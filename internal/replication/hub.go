package replication

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"pstore/internal/metrics"
	"pstore/internal/storage"
)

// Hub is the log-shipping server: replicas dial in, subscribe to a
// partition's feed and stream records; acks flow back on the same
// connection and advance the feed's replication horizon. One hub serves
// every partition a process hosts.
type Hub struct {
	opts   Options
	events *metrics.Events

	mu        sync.Mutex
	feeds     map[int]*Feed
	minEpochs map[int]uint64 // fencing floor per partition; stale feeds/streams are refused
	ln        net.Listener
	conns     map[net.Conn]struct{}
	subs      map[net.Conn]connSub // active subscriptions, for targeted fencing severs
	wrap      func(net.Conn) net.Conn
	closed    bool

	wg sync.WaitGroup
}

// connSub records which (partition, epoch) a subscriber connection is
// streaming, so FencePartition can sever exactly the stale streams.
type connSub struct {
	part  int
	epoch uint64
}

// NewHub creates a hub with no feeds registered.
func NewHub(opts Options, events *metrics.Events) *Hub {
	return &Hub{
		opts:      opts.Normalized(),
		events:    events,
		feeds:     make(map[int]*Feed),
		minEpochs: make(map[int]uint64),
		conns:     make(map[net.Conn]struct{}),
		subs:      make(map[net.Conn]connSub),
	}
}

// Register installs (or replaces, after a failover) the partition's feed.
// A feed below the partition's fencing floor is refused: a deposed primary
// rejoining after a network heal must not regain subscribers — it resyncs
// as a standby instead.
func (h *Hub) Register(part int, f *Feed) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if min := h.minEpochs[part]; f.Epoch() < min {
		return fmt.Errorf("%w: feed epoch %d below fencing floor %d for partition %d", ErrFenced, f.Epoch(), min, part)
	}
	h.feeds[part] = f
	return nil
}

// FencePartition raises the partition's epoch floor. Stale-epoch state is
// cut off at the hub: a registered feed below the floor is deregistered,
// and every subscriber stream fed from a stale epoch is severed so the
// replicas resubscribe to the new primary. The monitor calls this BEFORE a
// promoted replica serves — the old primary may be unreachable, but its
// subscribers are not, and taking them away is what forces it to
// self-fence (an armed feed below quorum stops acking).
func (h *Hub) FencePartition(part int, minEpoch uint64) {
	h.mu.Lock()
	if minEpoch <= h.minEpochs[part] {
		h.mu.Unlock()
		return
	}
	h.minEpochs[part] = minEpoch
	if f, ok := h.feeds[part]; ok && f.Epoch() < minEpoch {
		delete(h.feeds, part)
	}
	var sever []net.Conn
	for c, s := range h.subs { //pstore:ignore determinism — fencing sever-list; every stale stream is severed, order is unobservable
		if s.part == part && s.epoch < minEpoch {
			sever = append(sever, c)
		}
	}
	h.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
}

// MinEpoch returns the partition's fencing floor (zero if never fenced).
func (h *Hub) MinEpoch(part int) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.minEpochs[part]
}

// Deregister removes the partition's feed; new subscribers are refused.
func (h *Hub) Deregister(part int) {
	h.mu.Lock()
	delete(h.feeds, part)
	h.mu.Unlock()
}

// SetConnWrapper installs a connection wrapper (fault injection). Applies
// to connections accepted after the call.
func (h *Hub) SetConnWrapper(wrap func(net.Conn) net.Conn) {
	h.mu.Lock()
	h.wrap = wrap
	h.mu.Unlock()
}

// Listen binds the hub and starts accepting subscribers.
func (h *Hub) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	h.ln = ln
	h.mu.Unlock()
	h.wg.Add(1)
	go h.acceptLoop(ln)
	return nil
}

// Addr returns the hub's bound address ("" before Listen).
func (h *Hub) Addr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ln == nil {
		return ""
	}
	return h.ln.Addr().String()
}

// Close stops the listener and severs every subscriber connection.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	ln := h.ln
	conns := make([]net.Conn, 0, len(h.conns))
	for c := range h.conns { //pstore:ignore determinism — shutdown sever-list; every conn is closed, order is unobservable
		conns = append(conns, c)
	}
	h.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	h.wg.Wait()
}

func (h *Hub) acceptLoop(ln net.Listener) {
	defer h.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			conn.Close()
			return
		}
		if h.wrap != nil {
			conn = h.wrap(conn)
		}
		h.conns[conn] = struct{}{}
		h.mu.Unlock()
		h.wg.Add(1)
		go h.serveConn(conn)
	}
}

func (h *Hub) dropConn(conn net.Conn) {
	conn.Close()
	h.mu.Lock()
	delete(h.conns, conn)
	h.mu.Unlock()
}

// serveConn handles one subscriber: subscribe → seeding (snapshot or
// catch-up frames) → live stream, with an ack reader on the side.
func (h *Hub) serveConn(conn net.Conn) {
	defer h.wg.Done()
	defer h.dropConn(conn)

	br := bufio.NewReaderSize(conn, 1<<16)
	conn.SetReadDeadline(time.Now().Add(h.opts.DialTimeout)) //pstore:ignore seeddiscipline — I/O deadline arming, not a decision path
	var rbuf []byte
	payload, err := readShipFrame(br, &rbuf)
	if err != nil {
		return
	}
	part, fromLSN, fromEpoch, err := decodeSubscribe(payload)
	if err != nil {
		return
	}

	bw := bufio.NewWriterSize(conn, 1<<16)
	h.mu.Lock()
	feed, ok := h.feeds[part]
	minEpoch := h.minEpochs[part]
	h.mu.Unlock()
	if !ok {
		writeErrorFrame(conn, bw, fmt.Sprintf("no feed for partition %d", part), h.opts.AckTimeout)
		return
	}
	if feed.Epoch() < minEpoch {
		// The feed was fenced between lookup and here; refuse rather than
		// stream a deposed primary's records.
		writeErrorFrame(conn, bw, fmt.Sprintf("partition %d fenced at epoch %d", part, minEpoch), h.opts.AckTimeout)
		return
	}
	att, err := feed.Attach(fromLSN, fromEpoch)
	if err != nil {
		writeErrorFrame(conn, bw, err.Error(), h.opts.AckTimeout)
		return
	}
	defer att.Sub.Close()

	h.mu.Lock()
	fenced := att.Epoch < h.minEpochs[part]
	if !fenced {
		h.subs[conn] = connSub{part: part, epoch: att.Epoch}
	}
	h.mu.Unlock()
	if fenced {
		writeErrorFrame(conn, bw, fmt.Sprintf("partition %d fenced at epoch %d", part, h.MinEpoch(part)), h.opts.AckTimeout)
		return
	}
	defer func() {
		h.mu.Lock()
		delete(h.subs, conn)
		h.mu.Unlock()
	}()

	// Acks ride the same conn: a reader goroutine forwards them to the
	// subscriber. Its read deadline doubles as the liveness check — the
	// tail keepalives well inside AckTimeout, so a silent peer means a
	// dead or wedged replica and the connection is severed (the feed
	// deposes the subscriber via defer above, unblocking writers).
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		defer conn.Close()
		var abuf []byte
		for {
			conn.SetReadDeadline(time.Now().Add(h.opts.AckTimeout)) //pstore:ignore seeddiscipline — I/O deadline arming, not a decision path
			payload, err := readShipFrame(br, &abuf)
			if err != nil {
				return
			}
			lsn, err := decodeAck(payload)
			if err != nil {
				return
			}
			att.Sub.Ack(lsn)
		}
	}()

	if !h.writeSeeding(conn, bw, att) {
		return
	}
	h.streamLive(conn, bw, att)
}

// writeSeeding sends the hello plus snapshot/catch-up frames.
func (h *Hub) writeSeeding(conn net.Conn, bw *bufio.Writer, att *Attachment) bool {
	armWriteDeadline(conn, h.opts.AckTimeout)
	bw.Write(encodeHello(att))
	if att.Snapshot != nil {
		for _, b := range att.Snapshot.Buckets {
			armWriteDeadline(conn, h.opts.AckTimeout)
			bw.Write(encodeBucketFrame(b))
			if bw.Available() == 0 {
				if bw.Flush() != nil {
					return false
				}
			}
		}
	}
	for _, frame := range att.Catchup {
		armWriteDeadline(conn, h.opts.AckTimeout)
		if _, err := bw.Write(frame); err != nil {
			return false
		}
	}
	return bw.Flush() == nil
}

// streamLive forwards the subscriber's live queue until the connection or
// the subscription dies. Every record admitted to the queue while a send
// was in flight is coalesced into one multi-record batch envelope — one
// write, one standby fsync, one cumulative ack for the whole batch — capped
// by MaxBatchRecords/MaxBatchBytes; a lone record ships as a bare frame, so
// the idle-stream wire format is unchanged. Flushes at queue-drain
// boundaries so a burst pays one syscall. An idle stream carries
// heartbeats: the tail arms a read deadline on the live stream, so hub-side
// silence longer than AckTimeout — a partitioned or dead primary — kills
// the session instead of leaving a subscriber live at a stale ack
// watermark forever.
func (h *Hub) streamLive(conn net.Conn, bw *bufio.Writer, att *Attachment) {
	frames := att.Sub.Frames()
	gone := att.Sub.Gone()
	beat := time.NewTicker(h.opts.AckTimeout / 3)
	defer beat.Stop()
	// Session-local gather and envelope buffers, reused across batches so
	// the steady-state ship path allocates nothing per record.
	batch := make([][]byte, 0, h.opts.MaxBatchRecords)
	var env []byte
	for {
		var first []byte
		select {
		case first = <-frames:
		case <-beat.C:
			armWriteDeadline(conn, h.opts.AckTimeout)
			if _, err := bw.Write(encodeHeartbeat()); err != nil {
				return
			}
			if bw.Flush() != nil {
				return
			}
			continue
		case <-gone:
			return
		}
		for more := true; more; {
			var nbytes int
			batch, nbytes = gatherBatch(frames, batch[:0], first, h.opts.MaxBatchRecords, h.opts.MaxBatchBytes)
			wire := batch[0]
			if len(batch) > 1 {
				env = appendBatchEnvelope(env[:0], batch, nbytes)
				wire = env
			}
			armWriteDeadline(conn, h.opts.AckTimeout)
			if _, err := bw.Write(wire); err != nil {
				return
			}
			h.events.Observe(metrics.HistReplBatchRecords, int64(len(batch)))
			h.events.Observe(metrics.HistReplBatchBytes, int64(len(wire)))
			select {
			case first = <-frames:
			default:
				more = false
			}
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// gatherBatch drains the subscriber queue without blocking, collecting
// frames (starting with first, which is always taken) until the record or
// byte cap. Returns the batch and its summed frame bytes.
func gatherBatch(frames <-chan []byte, batch [][]byte, first []byte, maxRec, maxBytes int) ([][]byte, int) {
	batch = append(batch, first)
	nbytes := len(first)
	for len(batch) < maxRec && nbytes < maxBytes {
		select {
		case f := <-frames:
			batch = append(batch, f)
			nbytes += len(f)
		default:
			return batch, nbytes
		}
	}
	return batch, nbytes
}

func armWriteDeadline(conn net.Conn, d time.Duration) {
	conn.SetWriteDeadline(time.Now().Add(d)) //pstore:ignore seeddiscipline — I/O deadline arming, not a decision path
}

func writeErrorFrame(conn net.Conn, bw *bufio.Writer, msg string, timeout time.Duration) {
	armWriteDeadline(conn, timeout)
	bw.Write(encodeErrorFrame(msg))
	bw.Flush()
}

// ---- ship-stream message encoding ----

func frame(payload []byte) []byte {
	out := appendUvarint(make([]byte, 0, len(payload)+4), uint64(len(payload)))
	return append(out, payload...)
}

func encodeSubscribe(part int, fromLSN, fromEpoch uint64) []byte {
	p := []byte{msgSubscribe}
	p = appendUvarint(p, uint64(part))
	p = appendUvarint(p, fromLSN)
	p = appendUvarint(p, fromEpoch)
	return frame(p)
}

func decodeSubscribe(payload []byte) (part int, fromLSN, fromEpoch uint64, err error) {
	r := reader{data: payload}
	kind, err := r.byte()
	if err != nil {
		return 0, 0, 0, err
	}
	if kind != msgSubscribe {
		return 0, 0, 0, fmt.Errorf("replication: expected subscribe, got message kind %d", kind)
	}
	pv, err := r.uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	if fromLSN, err = r.uvarint(); err != nil {
		return 0, 0, 0, err
	}
	if fromEpoch, err = r.uvarint(); err != nil {
		return 0, 0, 0, err
	}
	return int(pv), fromLSN, fromEpoch, r.done()
}

func encodeHello(att *Attachment) []byte {
	p := []byte{msgHello}
	p = appendUvarint(p, att.Epoch)
	p = appendUvarint(p, att.StartLSN)
	if att.Snapshot == nil {
		p = append(p, 0)
		return frame(p)
	}
	p = append(p, 1)
	p = appendUvarint(p, uint64(len(att.Snapshot.Tables)))
	for _, t := range att.Snapshot.Tables {
		p = appendString(p, t)
	}
	p = appendUvarint(p, uint64(len(att.Snapshot.Buckets)))
	return frame(p)
}

// helloMsg is the decoded hub greeting.
type helloMsg struct {
	Epoch    uint64
	StartLSN uint64
	Snapshot bool
	Tables   []string
	NBuckets int
}

func decodeHello(payload []byte) (*helloMsg, error) {
	r := reader{data: payload}
	kind, err := r.byte()
	if err != nil {
		return nil, err
	}
	if kind == msgError {
		msg, merr := r.string()
		if merr != nil {
			return nil, merr
		}
		return nil, fmt.Errorf("replication: hub refused subscription: %s", msg)
	}
	if kind != msgHello {
		return nil, fmt.Errorf("replication: expected hello, got message kind %d", kind)
	}
	h := &helloMsg{}
	if h.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	if h.StartLSN, err = r.uvarint(); err != nil {
		return nil, err
	}
	snap, err := r.byte()
	if err != nil {
		return nil, err
	}
	if snap == 0 {
		return h, r.done()
	}
	h.Snapshot = true
	nt, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nt > uint64(len(r.data)) {
		return nil, errShipTruncated
	}
	for i := uint64(0); i < nt; i++ {
		t, err := r.string()
		if err != nil {
			return nil, err
		}
		h.Tables = append(h.Tables, t)
	}
	nb, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	h.NBuckets = int(nb)
	return h, r.done()
}

func encodeBucketFrame(b *storage.BucketData) []byte {
	p := []byte{msgBucket}
	p = appendBucketData(p, b)
	return frame(p)
}

func decodeBucketFrame(payload []byte) (*storage.BucketData, error) {
	r := reader{data: payload}
	kind, err := r.byte()
	if err != nil {
		return nil, err
	}
	if kind != msgBucket {
		return nil, fmt.Errorf("replication: expected snapshot bucket, got message kind %d", kind)
	}
	d, err := r.bucketData()
	if err != nil {
		return nil, err
	}
	return d, r.done()
}

func encodeErrorFrame(msg string) []byte {
	p := []byte{msgError}
	p = appendString(p, msg)
	return frame(p)
}

func encodeAck(lsn uint64) []byte {
	p := []byte{msgAck}
	p = appendUvarint(p, lsn)
	return frame(p)
}

func encodeHeartbeat() []byte {
	return frame([]byte{msgHeartbeat})
}

// isHeartbeat reports whether a stream payload is a liveness beacon (the
// tail skips them; their arrival alone resets its read deadline).
func isHeartbeat(payload []byte) bool {
	return len(payload) == 1 && payload[0] == msgHeartbeat
}

func decodeAck(payload []byte) (uint64, error) {
	r := reader{data: payload}
	kind, err := r.byte()
	if err != nil {
		return 0, err
	}
	if kind != msgAck {
		return 0, fmt.Errorf("replication: expected ack, got message kind %d", kind)
	}
	lsn, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return lsn, r.done()
}
