package replication

//pstore:deterministic — shipped records are replayed on replicas and
// compared byte-for-byte across runs; map iteration order must not leak
// into the encoding.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"

	"pstore/internal/durability"
	"pstore/internal/storage"
)

// Record kinds. They mirror the durability log's kinds, plus RecPut for
// bulk loads shipped outside stored procedures.
const (
	RecTxn       byte = 1 // a committed stored-procedure invocation
	RecBucketIn  byte = 2 // bucket received in a migration handoff, contents inline
	RecBucketOut byte = 3 // bucket handed off to a peer
	RecPut       byte = 4 // a direct row load (cluster.LoadRow)
)

// Ship-stream message kinds, kept disjoint from record kinds so a frame's
// first byte always identifies it.
const (
	msgSubscribe byte = 100 // replica → hub: part, epoch, fromLSN
	msgHello     byte = 101 // hub → replica: epoch, startLSN, optional snapshot header
	msgError     byte = 102 // hub → replica: refusal with reason
	msgBucket    byte = 103 // hub → replica: one snapshot bucket
	msgAck       byte = 104 // replica → hub: applied LSN
	msgHeartbeat byte = 105 // hub → replica: idle-stream liveness beacon
)

// Record is one shipped command-log entry. A replica applying records in
// LSN order reconstructs the primary's partition exactly.
type Record struct {
	LSN   uint64
	Epoch uint64
	Kind  byte

	Proc string            // RecTxn
	Key  string            // RecTxn, RecPut
	Args map[string]string // RecTxn args; RecPut columns
	Tab  string            // RecPut table

	Bucket int                 // RecBucketIn, RecBucketOut
	Data   *storage.BucketData // RecBucketIn
}

// maxShipFrame bounds a single shipped frame; a corrupt length prefix is
// rejected before any allocation.
const maxShipFrame = 64 << 20

// Codec errors. Torn or truncated frames must fail loudly — a replica that
// silently mis-decoded a record would diverge.
var (
	errShipTruncated = errors.New("replication: truncated record payload")
	errShipTrailing  = errors.New("replication: trailing bytes after record")
	errShipTooLarge  = errors.New("replication: frame exceeds size limit")
)

func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendStringMap writes a count-prefixed map in sorted key order so the
// same map always encodes to the same bytes.
func appendStringMap(buf []byte, m map[string]string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	var arr [16]string
	keys := arr[:0]
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, m[k])
	}
	return buf
}

// appendBucketData writes one bucket's rows with tables and rows sorted, so
// two replicas encoding identical state produce identical bytes.
func appendBucketData(buf []byte, d *storage.BucketData) []byte {
	buf = appendUvarint(buf, uint64(d.Bucket))
	names := make([]string, 0, len(d.Tables))
	for name := range d.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = appendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		rows := append([]storage.Row(nil), d.Tables[name]...)
		sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
		buf = appendString(buf, name)
		buf = appendUvarint(buf, uint64(len(rows)))
		for _, r := range rows {
			buf = appendString(buf, r.Key)
			buf = appendStringMap(buf, r.Cols)
		}
	}
	return buf
}

// fromDurable converts a durable log record into a ship record at the
// feed's current epoch — the disk catch-up path re-shipping committed
// history to a lagging replica.
func fromDurable(rec *durability.Record, epoch uint64) (*Record, error) {
	out := &Record{LSN: rec.Seq, Epoch: epoch}
	switch rec.Kind {
	case durability.KindTxn:
		out.Kind = RecTxn
		out.Proc, out.Key, out.Args = rec.Proc, rec.Key, rec.Args
	case durability.KindPut:
		out.Kind = RecPut
		out.Tab, out.Key, out.Args = rec.Tab, rec.Key, rec.Args
	case durability.KindBucketOut:
		out.Kind = RecBucketOut
		out.Bucket = rec.Bucket
	case durability.KindBucketIn:
		out.Kind = RecBucketIn
		var data storage.BucketData
		if err := json.Unmarshal(rec.Data, &data); err != nil {
			return nil, fmt.Errorf("replication: durable bucket-in record: %w", err)
		}
		out.Bucket, out.Data = data.Bucket, &data
	default:
		return nil, fmt.Errorf("replication: unknown durable record kind %d", rec.Kind)
	}
	return out, nil
}

// reader tracks a decode position inside one payload.
type reader struct {
	data []byte
	pos  int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, errShipTruncated
	}
	r.pos += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, errShipTruncated
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.data)-r.pos) {
		return "", errShipTruncated
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) stringMap() (map[string]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos)/2 {
		return nil, errShipTruncated
	}
	if n == 0 {
		return nil, nil
	}
	m := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.string()
		if err != nil {
			return nil, err
		}
		v, err := r.string()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func (r *reader) bucketData() (*storage.BucketData, error) {
	b, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nt, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nt > uint64(len(r.data)-r.pos) {
		return nil, errShipTruncated
	}
	d := &storage.BucketData{Bucket: int(b), Tables: make(map[string][]storage.Row, nt)}
	for i := uint64(0); i < nt; i++ {
		name, err := r.string()
		if err != nil {
			return nil, err
		}
		nr, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nr > uint64(len(r.data)-r.pos) {
			return nil, errShipTruncated
		}
		rows := make([]storage.Row, 0, nr)
		for j := uint64(0); j < nr; j++ {
			key, err := r.string()
			if err != nil {
				return nil, err
			}
			cols, err := r.stringMap()
			if err != nil {
				return nil, err
			}
			if cols == nil {
				cols = map[string]string{}
			}
			rows = append(rows, storage.Row{Key: key, Cols: cols})
		}
		d.Tables[name] = rows
	}
	return d, nil
}

func (r *reader) done() error {
	if r.pos != len(r.data) {
		return errShipTrailing
	}
	return nil
}

// appendRecord appends rec as one length-prefixed frame.
func appendRecord(buf []byte, rec *Record) []byte {
	payload := make([]byte, 0, 64)
	payload = append(payload, rec.Kind)
	payload = appendUvarint(payload, rec.LSN)
	payload = appendUvarint(payload, rec.Epoch)
	switch rec.Kind {
	case RecTxn:
		payload = appendString(payload, rec.Proc)
		payload = appendString(payload, rec.Key)
		payload = appendStringMap(payload, rec.Args)
	case RecPut:
		payload = appendString(payload, rec.Tab)
		payload = appendString(payload, rec.Key)
		payload = appendStringMap(payload, rec.Args)
	case RecBucketOut:
		payload = appendUvarint(payload, uint64(rec.Bucket))
	case RecBucketIn:
		payload = appendBucketData(payload, rec.Data)
	}
	buf = appendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...)
}

// decodeRecord parses one record payload (frame length already stripped).
func decodeRecord(data []byte) (*Record, error) {
	r := reader{data: data}
	kind, err := r.byte()
	if err != nil {
		return nil, err
	}
	rec := &Record{Kind: kind}
	if rec.LSN, err = r.uvarint(); err != nil {
		return nil, err
	}
	if rec.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	switch kind {
	case RecTxn:
		if rec.Proc, err = r.string(); err != nil {
			return nil, err
		}
		if rec.Key, err = r.string(); err != nil {
			return nil, err
		}
		if rec.Args, err = r.stringMap(); err != nil {
			return nil, err
		}
	case RecPut:
		if rec.Tab, err = r.string(); err != nil {
			return nil, err
		}
		if rec.Key, err = r.string(); err != nil {
			return nil, err
		}
		if rec.Args, err = r.stringMap(); err != nil {
			return nil, err
		}
	case RecBucketOut:
		b, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		rec.Bucket = int(b)
	case RecBucketIn:
		d, err := r.bucketData()
		if err != nil {
			return nil, err
		}
		rec.Bucket = d.Bucket
		rec.Data = d
	default:
		return nil, fmt.Errorf("replication: unknown record kind %d", kind)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return rec, nil
}

// readShipFrame reads one length-prefixed frame into buf (reused across
// calls) and returns the payload slice, valid until the next call. A short
// read returns io.ErrUnexpectedEOF — a torn frame, never a silent
// truncation.
func readShipFrame(br *bufio.Reader, buf *[]byte) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxShipFrame {
		return nil, errShipTooLarge
	}
	if uint64(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
