package replication

//pstore:deterministic — shipped records are replayed on replicas and
// compared byte-for-byte across runs; map iteration order must not leak
// into the encoding.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"

	"pstore/internal/durability"
	"pstore/internal/storage"
)

// Record kinds. They mirror the durability log's kinds, plus RecPut for
// bulk loads shipped outside stored procedures.
const (
	RecTxn       byte = 1 // a committed stored-procedure invocation
	RecBucketIn  byte = 2 // bucket received in a migration handoff, contents inline
	RecBucketOut byte = 3 // bucket handed off to a peer
	RecPut       byte = 4 // a direct row load (cluster.LoadRow)
)

// Ship-stream message kinds, kept disjoint from record kinds so a frame's
// first byte always identifies it.
const (
	msgSubscribe byte = 100 // replica → hub: part, epoch, fromLSN
	msgHello     byte = 101 // hub → replica: epoch, startLSN, optional snapshot header
	msgError     byte = 102 // hub → replica: refusal with reason
	msgBucket    byte = 103 // hub → replica: one snapshot bucket
	msgAck       byte = 104 // replica → hub: applied LSN (cumulative: highest contiguous)
	msgHeartbeat byte = 105 // hub → replica: idle-stream liveness beacon
	msgBatch     byte = 106 // hub → replica: multi-record envelope (count + record frames)
)

// Record is one shipped command-log entry. A replica applying records in
// LSN order reconstructs the primary's partition exactly.
type Record struct {
	LSN   uint64
	Epoch uint64
	Kind  byte

	Proc string            // RecTxn
	Key  string            // RecTxn, RecPut
	Args map[string]string // RecTxn args; RecPut columns
	Tab  string            // RecPut table

	Bucket int                 // RecBucketIn, RecBucketOut
	Data   *storage.BucketData // RecBucketIn
}

// maxShipFrame bounds a single shipped frame; a corrupt length prefix is
// rejected before any allocation.
const maxShipFrame = 64 << 20

// Codec errors. Torn or truncated frames must fail loudly — a replica that
// silently mis-decoded a record would diverge.
var (
	errShipTruncated = errors.New("replication: truncated record payload")
	errShipTrailing  = errors.New("replication: trailing bytes after record")
	errShipTooLarge  = errors.New("replication: frame exceeds size limit")
)

func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendStringMap writes a count-prefixed map in sorted key order so the
// same map always encodes to the same bytes.
func appendStringMap(buf []byte, m map[string]string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	var arr [16]string
	keys := arr[:0]
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, m[k])
	}
	return buf
}

// appendBucketData writes one bucket's rows with tables and rows sorted, so
// two replicas encoding identical state produce identical bytes.
func appendBucketData(buf []byte, d *storage.BucketData) []byte {
	buf = appendUvarint(buf, uint64(d.Bucket))
	names := make([]string, 0, len(d.Tables))
	for name := range d.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = appendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		rows := append([]storage.Row(nil), d.Tables[name]...)
		sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
		buf = appendString(buf, name)
		buf = appendUvarint(buf, uint64(len(rows)))
		for _, r := range rows {
			buf = appendString(buf, r.Key)
			buf = appendStringMap(buf, r.Cols)
		}
	}
	return buf
}

// fromDurable converts a durable log record into a ship record at the
// feed's current epoch — the disk catch-up path re-shipping committed
// history to a lagging replica.
func fromDurable(rec *durability.Record, epoch uint64) (*Record, error) {
	out := &Record{LSN: rec.Seq, Epoch: epoch}
	switch rec.Kind {
	case durability.KindTxn:
		out.Kind = RecTxn
		out.Proc, out.Key, out.Args = rec.Proc, rec.Key, rec.Args
	case durability.KindPut:
		out.Kind = RecPut
		out.Tab, out.Key, out.Args = rec.Tab, rec.Key, rec.Args
	case durability.KindBucketOut:
		out.Kind = RecBucketOut
		out.Bucket = rec.Bucket
	case durability.KindBucketIn:
		out.Kind = RecBucketIn
		var data storage.BucketData
		if err := json.Unmarshal(rec.Data, &data); err != nil {
			return nil, fmt.Errorf("replication: durable bucket-in record: %w", err)
		}
		out.Bucket, out.Data = data.Bucket, &data
	default:
		return nil, fmt.Errorf("replication: unknown durable record kind %d", rec.Kind)
	}
	return out, nil
}

// reader tracks a decode position inside one payload.
type reader struct {
	data []byte
	pos  int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, errShipTruncated
	}
	r.pos += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, errShipTruncated
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.data)-r.pos) {
		return "", errShipTruncated
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) stringMap() (map[string]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos)/2 {
		return nil, errShipTruncated
	}
	if n == 0 {
		return nil, nil
	}
	m := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.string()
		if err != nil {
			return nil, err
		}
		v, err := r.string()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func (r *reader) bucketData() (*storage.BucketData, error) {
	b, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nt, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nt > uint64(len(r.data)-r.pos) {
		return nil, errShipTruncated
	}
	d := &storage.BucketData{Bucket: int(b), Tables: make(map[string][]storage.Row, nt)}
	for i := uint64(0); i < nt; i++ {
		name, err := r.string()
		if err != nil {
			return nil, err
		}
		nr, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nr > uint64(len(r.data)-r.pos) {
			return nil, errShipTruncated
		}
		rows := make([]storage.Row, 0, nr)
		for j := uint64(0); j < nr; j++ {
			key, err := r.string()
			if err != nil {
				return nil, err
			}
			cols, err := r.stringMap()
			if err != nil {
				return nil, err
			}
			if cols == nil {
				cols = map[string]string{}
			}
			rows = append(rows, storage.Row{Key: key, Cols: cols})
		}
		d.Tables[name] = rows
	}
	return d, nil
}

func (r *reader) done() error {
	if r.pos != len(r.data) {
		return errShipTrailing
	}
	return nil
}

// appendRecordPayload appends rec's payload bytes (no length prefix).
func appendRecordPayload(payload []byte, rec *Record) []byte {
	payload = append(payload, rec.Kind)
	payload = appendUvarint(payload, rec.LSN)
	payload = appendUvarint(payload, rec.Epoch)
	switch rec.Kind {
	case RecTxn:
		payload = appendString(payload, rec.Proc)
		payload = appendString(payload, rec.Key)
		payload = appendStringMap(payload, rec.Args)
	case RecPut:
		payload = appendString(payload, rec.Tab)
		payload = appendString(payload, rec.Key)
		payload = appendStringMap(payload, rec.Args)
	case RecBucketOut:
		payload = appendUvarint(payload, uint64(rec.Bucket))
	case RecBucketIn:
		payload = appendBucketData(payload, rec.Data)
	}
	return payload
}

// appendRecord appends rec as one length-prefixed frame.
func appendRecord(buf []byte, rec *Record) []byte {
	payload := appendRecordPayload(make([]byte, 0, 64), rec)
	buf = appendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...)
}

// encodePool recycles the scratch buffers encodeFrame stages payloads in.
// Only the scratch is pooled — the returned frame must be a fresh
// allocation, because the feed retains it in its catch-up buffer and every
// subscriber queue holds a reference.
var encodePool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// encodeFrame encodes rec as one standalone length-prefixed frame in a
// single right-sized allocation: the payload is staged in a pooled scratch
// (its length determines the uvarint prefix), then copied once into the
// frame the feed retains. This is the feed's per-append encoding path, so
// it is held to the same allocation discipline as the request hot path.
func encodeFrame(rec *Record) []byte {
	sp := encodePool.Get().(*[]byte)
	payload := appendRecordPayload((*sp)[:0], rec)
	frame := make([]byte, 0, len(payload)+binary.MaxVarintLen32)
	frame = appendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	*sp = payload[:0]
	encodePool.Put(sp)
	return frame
}

// appendBatchEnvelope appends one length-prefixed msgBatch frame wrapping
// the given record frames (each already length-prefixed): the multi-record
// ship envelope. nbytes must be the summed length of the frames. The
// caller hands the result to a single writer call, so a burst of records
// costs one syscall, one standby fsync and one cumulative ack.
//
// Envelope payload layout: msgBatch, uvarint record count, then the record
// frames verbatim — a decoder walks the inner length prefixes and must
// consume the payload exactly (count and bytes both checked), so a torn or
// padded envelope fails loudly like every other frame.
func appendBatchEnvelope(buf []byte, frames [][]byte, nbytes int) []byte {
	var cnt [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(cnt[:], uint64(len(frames)))
	buf = appendUvarint(buf, uint64(1+n+nbytes))
	buf = append(buf, msgBatch)
	buf = append(buf, cnt[:n]...)
	for _, f := range frames {
		buf = append(buf, f...)
	}
	return buf
}

// splitBatch validates a msgBatch envelope header and returns the declared
// record count plus the concatenated record frames.
func splitBatch(payload []byte) (count uint64, frames []byte, err error) {
	r := reader{data: payload}
	kind, err := r.byte()
	if err != nil {
		return 0, nil, err
	}
	if kind != msgBatch {
		return 0, nil, fmt.Errorf("replication: expected batch envelope, got message kind %d", kind)
	}
	if count, err = r.uvarint(); err != nil {
		return 0, nil, err
	}
	if count == 0 {
		return 0, nil, fmt.Errorf("replication: empty batch envelope")
	}
	if count > uint64(len(payload)) {
		return 0, nil, errShipTruncated
	}
	return count, payload[r.pos:], nil
}

// nextBatchRecord slices one record payload off the envelope's remaining
// frame bytes. A length prefix running past the envelope is a torn batch.
func nextBatchRecord(frames []byte) (payload, rest []byte, err error) {
	n, sz := binary.Uvarint(frames)
	if sz <= 0 {
		return nil, nil, errShipTruncated
	}
	if n > maxShipFrame {
		return nil, nil, errShipTooLarge
	}
	if n > uint64(len(frames)-sz) {
		return nil, nil, errShipTruncated
	}
	return frames[sz : sz+int(n)], frames[sz+int(n):], nil
}

// decodeRecord parses one record payload (frame length already stripped).
func decodeRecord(data []byte) (*Record, error) {
	r := reader{data: data}
	kind, err := r.byte()
	if err != nil {
		return nil, err
	}
	rec := &Record{Kind: kind}
	if rec.LSN, err = r.uvarint(); err != nil {
		return nil, err
	}
	if rec.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	switch kind {
	case RecTxn:
		if rec.Proc, err = r.string(); err != nil {
			return nil, err
		}
		if rec.Key, err = r.string(); err != nil {
			return nil, err
		}
		if rec.Args, err = r.stringMap(); err != nil {
			return nil, err
		}
	case RecPut:
		if rec.Tab, err = r.string(); err != nil {
			return nil, err
		}
		if rec.Key, err = r.string(); err != nil {
			return nil, err
		}
		if rec.Args, err = r.stringMap(); err != nil {
			return nil, err
		}
	case RecBucketOut:
		b, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		rec.Bucket = int(b)
	case RecBucketIn:
		d, err := r.bucketData()
		if err != nil {
			return nil, err
		}
		rec.Bucket = d.Bucket
		rec.Data = d
	default:
		return nil, fmt.Errorf("replication: unknown record kind %d", kind)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return rec, nil
}

// readShipFrame reads one length-prefixed frame into buf (reused across
// calls) and returns the payload slice, valid until the next call. A short
// read returns io.ErrUnexpectedEOF — a torn frame, never a silent
// truncation.
func readShipFrame(br *bufio.Reader, buf *[]byte) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxShipFrame {
		return nil, errShipTooLarge
	}
	if uint64(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
