package replication

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"pstore/internal/storage"
)

func sampleRecords() []*Record {
	return []*Record{
		{LSN: 1, Epoch: 1, Kind: RecTxn, Proc: "Put", Key: "k1", Args: map[string]string{"v": "1", "w": "2"}},
		{LSN: 2, Epoch: 1, Kind: RecTxn, Proc: "Delete", Key: "k2"},
		{LSN: 3, Epoch: 2, Kind: RecPut, Tab: "T", Key: "k3", Args: map[string]string{"v": "x"}},
		{LSN: 4, Epoch: 2, Kind: RecBucketOut, Bucket: 17},
		{LSN: 5, Epoch: 3, Kind: RecBucketIn, Bucket: 4, Data: &storage.BucketData{
			Bucket: 4,
			Tables: map[string][]storage.Row{
				"T": {
					{Key: "a", Cols: map[string]string{"v": "1"}},
					{Key: "b", Cols: map[string]string{"v": "2", "u": "3"}},
				},
				"U": {},
			},
		}},
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	var stream []byte
	recs := sampleRecords()
	for _, rec := range recs {
		stream = appendRecord(stream, rec)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for i, want := range recs {
		payload, err := readShipFrame(br, &buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		// Empty maps decode as nil; normalize before comparing.
		if want.Kind == RecBucketIn {
			if got.Bucket != want.Bucket || got.Data == nil {
				t.Fatalf("record %d: bucket mismatch", i)
			}
			ge := appendBucketData(nil, got.Data)
			we := appendBucketData(nil, want.Data)
			if !bytes.Equal(ge, we) {
				t.Fatalf("record %d: bucket data differs after round trip", i)
			}
			got.Data, want.Data = nil, nil
		}
		if len(want.Args) == 0 {
			want.Args = got.Args
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d round trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := readShipFrame(br, &buf); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestRecordCodecDeterministicEncoding re-encodes the same logical record
// many times; map iteration order must never leak into the bytes.
func TestRecordCodecDeterministicEncoding(t *testing.T) {
	rec := sampleRecords()[0]
	want := appendRecord(nil, rec)
	for i := 0; i < 50; i++ {
		args := make(map[string]string, len(rec.Args))
		for k, v := range rec.Args {
			args[k] = v
		}
		again := appendRecord(nil, &Record{LSN: rec.LSN, Epoch: rec.Epoch, Kind: rec.Kind, Proc: rec.Proc, Key: rec.Key, Args: args})
		if !bytes.Equal(want, again) {
			t.Fatalf("iteration %d: encoding differs for identical record", i)
		}
	}
}

// TestTornFrameFailsLoudly truncates a shipped stream at every possible
// byte boundary: the decoder must error on every prefix, never hand back a
// record from torn input.
func TestTornFrameFailsLoudly(t *testing.T) {
	var stream []byte
	for _, rec := range sampleRecords() {
		stream = appendRecord(stream, rec)
	}
	whole := len(sampleRecords())
	for cut := 0; cut < len(stream); cut++ {
		br := bufio.NewReader(bytes.NewReader(stream[:cut]))
		var buf []byte
		decoded := 0
		var err error
		for {
			var payload []byte
			payload, err = readShipFrame(br, &buf)
			if err != nil {
				break
			}
			if _, err = decodeRecord(payload); err != nil {
				break
			}
			decoded++
		}
		if decoded >= whole {
			t.Fatalf("cut at %d/%d: decoded all %d records from a torn stream", cut, len(stream), decoded)
		}
		if err == nil {
			t.Fatalf("cut at %d: no error from torn stream", cut)
		}
	}
}

// TestCorruptPayloadRejected flips the interior of a record payload into
// forms the decoder must refuse: trailing garbage, truncated payloads and
// an oversized length prefix.
func TestCorruptPayloadRejected(t *testing.T) {
	rec := sampleRecords()[0]
	framed := appendRecord(nil, rec)
	br := bufio.NewReader(bytes.NewReader(framed))
	var buf []byte
	payload, err := readShipFrame(br, &buf)
	if err != nil {
		t.Fatal(err)
	}

	trailing := append(append([]byte(nil), payload...), 0xFF)
	if _, err := decodeRecord(trailing); !errors.Is(err, errShipTrailing) {
		t.Errorf("trailing byte: %v, want errShipTrailing", err)
	}
	for cut := 1; cut < len(payload); cut++ {
		if _, err := decodeRecord(payload[:cut]); err == nil {
			t.Errorf("truncated payload at %d decoded without error", cut)
		}
	}
	if _, err := decodeRecord([]byte{99, 1, 1}); err == nil {
		t.Error("unknown record kind decoded without error")
	}

	huge := appendUvarint(nil, maxShipFrame+1)
	if _, err := readShipFrame(bufio.NewReader(bytes.NewReader(huge)), &buf); !errors.Is(err, errShipTooLarge) {
		t.Errorf("oversized frame: %v, want errShipTooLarge", err)
	}
}

// TestDeterministicReplayProperty is the replay property test: a randomly
// generated command log applied to two fresh replicas must leave them
// byte-identical — snapshot encodings and applied horizons equal.
func TestDeterministicReplayProperty(t *testing.T) {
	const nBuckets = 16
	rng := rand.New(rand.NewSource(7))
	recs := make([]*Record, 0, 400)
	lsn := uint64(0)
	// Seed ownership of every bucket, then a shuffled mix of puts, txns
	// and bucket handoffs.
	for b := 0; b < nBuckets; b++ {
		lsn++
		recs = append(recs, &Record{LSN: lsn, Epoch: 1, Kind: RecBucketIn, Bucket: b,
			Data: &storage.BucketData{Bucket: b, Tables: map[string][]storage.Row{}}})
	}
	for i := 0; i < 300; i++ {
		lsn++
		key := fmt.Sprintf("key-%d", rng.Intn(120))
		switch rng.Intn(4) {
		case 0:
			recs = append(recs, &Record{LSN: lsn, Epoch: 1, Kind: RecPut, Tab: "T", Key: key,
				Args: map[string]string{"v": fmt.Sprintf("%d", i), "r": fmt.Sprintf("%d", rng.Intn(10))}})
		case 1:
			b := rng.Intn(nBuckets)
			recs = append(recs, &Record{LSN: lsn, Epoch: 1, Kind: RecBucketOut, Bucket: b})
		case 2:
			b := rng.Intn(nBuckets)
			recs = append(recs, &Record{LSN: lsn, Epoch: 1, Kind: RecBucketIn, Bucket: b,
				Data: &storage.BucketData{Bucket: b, Tables: map[string][]storage.Row{
					"T": {{Key: key, Cols: map[string]string{"v": "seeded"}}},
				}}})
		default:
			recs = append(recs, &Record{LSN: lsn, Epoch: 1, Kind: RecPut, Tab: "U", Key: key,
				Args: map[string]string{"n": fmt.Sprintf("%d", i)}})
		}
	}

	replay := func() *Replica {
		r := NewReplica(0, nBuckets, "n", testReg(), Options{Seed: 1}, newTestEvents())
		for _, rec := range recs {
			if err := r.Apply(cloneRecord(rec)); err != nil {
				t.Fatalf("apply LSN %d: %v", rec.LSN, err)
			}
		}
		return r
	}
	a, b := replay(), replay()
	if a.Applied() != b.Applied() {
		t.Fatalf("applied horizons differ: %d vs %d", a.Applied(), b.Applied())
	}
	ea, eb := encodeReplica(a), encodeReplica(b)
	if !bytes.Equal(ea, eb) {
		t.Fatalf("replica states differ after identical replay (%d vs %d bytes)", len(ea), len(eb))
	}
}

// cloneRecord deep-copies a record so one replay cannot alias state into
// the other through shared maps.
func cloneRecord(rec *Record) *Record {
	out := *rec
	if rec.Args != nil {
		out.Args = make(map[string]string, len(rec.Args))
		for k, v := range rec.Args {
			out.Args[k] = v
		}
	}
	if rec.Data != nil {
		d := &storage.BucketData{Bucket: rec.Data.Bucket, Tables: make(map[string][]storage.Row, len(rec.Data.Tables))}
		for name, rows := range rec.Data.Tables {
			cp := make([]storage.Row, len(rows))
			for i, r := range rows {
				cols := make(map[string]string, len(r.Cols))
				for k, v := range r.Cols {
					cols[k] = v
				}
				cp[i] = storage.Row{Key: r.Key, Cols: cols}
			}
			d.Tables[name] = cp
		}
		out.Data = d
	}
	return &out
}

// encodeReplica serializes a replica's owned buckets with the deterministic
// bucket encoding.
func encodeReplica(r *Replica) []byte {
	var out []byte
	r.Inspect(func(p *storage.Partition) {
		for _, b := range p.OwnedBuckets() {
			d, err := p.CopyBucket(b)
			if err != nil {
				panic(err)
			}
			out = appendBucketData(out, d)
		}
	})
	return out
}
