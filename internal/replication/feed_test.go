package replication

import (
	"errors"
	"testing"
	"time"

	"pstore/internal/engine"
	"pstore/internal/metrics"
)

func testReg() *engine.Registry {
	reg := engine.NewRegistry()
	reg.Register("Put", func(tx *engine.Txn) error {
		return tx.Put("T", tx.Key, map[string]string{"v": tx.Arg("v")})
	})
	reg.Register("Get", func(tx *engine.Txn) error {
		r, ok, err := tx.Get("T", tx.Key)
		if err != nil {
			return err
		}
		if !ok {
			return tx.Abort("not found")
		}
		tx.SetOut("v", r.Cols["v"])
		return nil
	})
	return reg
}

func newTestEvents() *metrics.Events { return metrics.NewEvents() }

func memFeed() *Feed {
	return NewFeed(0, nil, 1, 0, Options{Seed: 1}, newTestEvents())
}

// appendWait appends and returns the completion channel.
func appendWait(f *Feed, key string) chan error {
	done := make(chan error, 1)
	f.Append("Put", key, map[string]string{"v": key}, func(_ uint64, err error) { done <- err })
	return done
}

func TestFeedAckGatesCompletion(t *testing.T) {
	f := memFeed()
	defer f.Close()
	att, err := f.Attach(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if live, total := f.Subscribers(); live != 1 || total != 1 {
		t.Fatalf("subscribers = (%d,%d), want (1,1)", live, total)
	}

	done := appendWait(f, "a")
	select {
	case err := <-done:
		t.Fatalf("append completed before replica ack (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	// The frame reached the subscriber queue even though the ack is pending.
	select {
	case <-att.Sub.Frames():
	default:
		t.Fatal("no frame queued for subscriber")
	}
	att.Sub.Ack(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append after ack: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("append never completed after ack")
	}
	if h := f.Horizon(); h != 1 {
		t.Fatalf("horizon = %d, want 1", h)
	}
}

// TestFeedJoinIsPauseless: a subscriber attached mid-stream starts non-live
// and must not gate writes until its first ack reaches the join point.
func TestFeedJoinIsPauseless(t *testing.T) {
	f := memFeed()
	defer f.Close()
	for i := 0; i < 5; i++ {
		if err := <-appendWait(f, "w"); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot-based attach from scratch: StartLSN 0, joinLSN = 5 → not live.
	f.SetSnapshotFunc(func() (*Snapshot, error) {
		return &Snapshot{LSN: 0, Epoch: 1}, nil
	})
	att, err := f.Attach(0, 0) // epoch 0 ≠ feed epoch → snapshot path
	if err != nil {
		t.Fatal(err)
	}
	if att.Snapshot == nil {
		t.Fatal("expected snapshot seeding for epoch-0 subscriber")
	}
	if live, total := f.Subscribers(); live != 0 || total != 1 {
		t.Fatalf("subscribers = (%d,%d), want (0,1): catching-up join must not be live", live, total)
	}
	// Writes complete without the laggard's ack.
	select {
	case err := <-appendWait(f, "x"):
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("non-live subscriber gated a write")
	}
	// First ack at/past the join point makes it live.
	att.Sub.Ack(f.LSN())
	if live, _ := f.Subscribers(); live != 1 {
		t.Fatal("subscriber not live after acking join LSN")
	}
	done := appendWait(f, "y")
	select {
	case err := <-done:
		t.Fatalf("append completed without live subscriber ack (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	att.Sub.Ack(f.LSN())
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestFeedFenceFailsInFlightAndDeposes(t *testing.T) {
	f := memFeed()
	att, err := f.Attach(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	done := appendWait(f, "a") // blocked on the subscriber's ack
	f.Fence()
	if err := <-done; !errors.Is(err, ErrFenced) {
		t.Fatalf("in-flight waiter after fence: %v, want ErrFenced", err)
	}
	select {
	case <-att.Sub.Gone():
	case <-time.After(time.Second):
		t.Fatal("subscriber not deposed by fence")
	}
	if err := <-appendWait(f, "b"); !errors.Is(err, ErrFenced) {
		t.Fatalf("append to fenced feed: %v, want ErrFenced", err)
	}
	if err := f.LogPut("T", "k", nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("LogPut to fenced feed: %v, want ErrFenced", err)
	}
	if _, err := f.Attach(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("attach to fenced feed: %v, want ErrClosed", err)
	}
}

func TestFeedCloseFailsInFlight(t *testing.T) {
	f := memFeed()
	if _, err := f.Attach(0, 1); err != nil {
		t.Fatal(err)
	}
	done := appendWait(f, "a")
	f.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("in-flight waiter after close: %v, want ErrClosed", err)
	}
}

// TestFeedCatchupFromRetainedTail: a subscriber resuming within the
// retained window gets exactly the missing frames, no snapshot.
func TestFeedCatchupFromRetainedTail(t *testing.T) {
	f := memFeed()
	defer f.Close()
	for i := 0; i < 10; i++ {
		if err := <-appendWait(f, "k"); err != nil {
			t.Fatal(err)
		}
	}
	att, err := f.Attach(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if att.Snapshot != nil {
		t.Fatal("in-window resume must not snapshot")
	}
	if len(att.Catchup) != 6 {
		t.Fatalf("catchup = %d frames, want 6 (LSNs 5..10)", len(att.Catchup))
	}
	want := uint64(5)
	for _, frame := range att.Catchup {
		rec, err := decodeRecord(frame[frameHeaderLen(frame):])
		if err != nil {
			t.Fatal(err)
		}
		if rec.LSN != want {
			t.Fatalf("catchup frame LSN = %d, want %d", rec.LSN, want)
		}
		want++
	}
}

// frameHeaderLen returns the length of the uvarint length prefix on an
// encoded frame.
func frameHeaderLen(frame []byte) int {
	n := 0
	for frame[n]&0x80 != 0 {
		n++
	}
	return n + 1
}

// TestFeedSlowSubscriberDeposed: a subscriber that stops draining falls out
// of the ack quorum instead of wedging writers forever.
func TestFeedSlowSubscriberDeposed(t *testing.T) {
	f := NewFeed(0, nil, 1, 0, Options{Seed: 1, MaxBuffer: 4}, newTestEvents())
	defer f.Close()
	att, err := f.Attach(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Queue capacity is MaxBuffer; never drain it.
	for i := 0; i < 10; i++ {
		f.Append("Put", "k", map[string]string{"v": "1"}, nil)
	}
	select {
	case <-att.Sub.Gone():
	case <-time.After(time.Second):
		t.Fatal("overflowing subscriber was not deposed")
	}
	// With the laggard gone the feed degrades to local-only acks.
	if err := <-appendWait(f, "z"); err != nil {
		t.Fatal(err)
	}
}

func TestFeedStaleEpochAttachRejected(t *testing.T) {
	f := NewFeed(0, nil, 3, 0, Options{Seed: 1}, newTestEvents())
	defer f.Close()
	if _, err := f.Attach(0, 4); !errors.Is(err, errStaleEpoch) {
		t.Fatalf("attach from future epoch: %v, want errStaleEpoch", err)
	}
}
