package replication

import (
	"testing"

	"pstore/internal/testutil"
)

// TestMain fails the suite if any test leaks a goroutine: every feed, hub,
// tail, and replica started here spawns background loops that must all
// join on Close/Stop.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
