package replication

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"pstore/internal/metrics"
)

// errTailRetired marks a session ended because the replica stopped serving
// (promoted or killed) — the tail exits instead of reconnecting.
var errTailRetired = errors.New("replication: tail retired")

// Tail is the replica-side shipping client: it dials the hub, subscribes
// from the replica's applied horizon, applies records and acks them, and
// reconnects with seeded jittered backoff when the stream dies — resyncing
// from a snapshot automatically when its position has fallen off the feed.
type Tail struct {
	addr   string
	rep    *Replica
	opts   Options
	events *metrics.Events
	wrap   func(net.Conn) net.Conn

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartTail launches the shipping client for the replica against the hub
// at addr. wrap (optional) interposes fault injection on each connection.
func StartTail(addr string, rep *Replica, wrap func(net.Conn) net.Conn, opts Options, events *metrics.Events) *Tail {
	t := &Tail{
		addr:   addr,
		rep:    rep,
		opts:   opts.Normalized(),
		events: events,
		wrap:   wrap,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go t.run()
	return t
}

// Stop terminates the tail and waits for its goroutine. Idempotent.
func (t *Tail) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

// run is the reconnect loop. Backoff doubles per consecutive failure with
// ±50% jitter drawn from the run's seed, so chaos runs replay and tails
// don't thundering-herd a recovering hub.
func (t *Tail) run() {
	defer close(t.done)
	rng := rand.New(rand.NewSource(t.opts.Seed ^ int64(t.rep.Partition())*0x9e3779b9))
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	backoff := t.opts.RetryBase
	for {
		select {
		case <-t.stop:
			return
		default:
		}
		err := t.session()
		if err == nil || errors.Is(err, errTailRetired) || !t.rep.Serving() {
			return
		}
		t.events.Add(metrics.EventReplResyncs, 1)
		d := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
		backoff *= 2
		if backoff > time.Second {
			backoff = time.Second
		}
		timer.Reset(d)
		select {
		case <-t.stop:
			return
		case <-timer.C:
		}
	}
}

// session runs one subscribe-and-apply stream. A nil return means the tail
// was asked to stop; any error triggers a reconnect.
func (t *Tail) session() error {
	d := net.Dialer{Timeout: t.opts.DialTimeout}
	conn, err := d.Dial("tcp", t.addr)
	if err != nil {
		return err
	}
	if t.wrap != nil {
		conn = t.wrap(conn)
	}
	defer conn.Close()

	// Severing the connection is the one reliable way to unblock the
	// reader; a watcher does it on Stop.
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	go func() {
		select {
		case <-t.stop:
			conn.Close()
		case <-sessionDone:
		}
	}()

	var wmu sync.Mutex
	bw := bufio.NewWriterSize(conn, 1<<14)
	sendFrame := func(b []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		armWriteDeadline(conn, t.opts.AckTimeout)
		if _, err := bw.Write(b); err != nil {
			return err
		}
		return bw.Flush()
	}

	if err := sendFrame(encodeSubscribe(t.rep.Partition(), t.rep.Applied(), t.rep.Epoch())); err != nil {
		return err
	}

	br := bufio.NewReaderSize(conn, 1<<16)
	var rbuf []byte
	conn.SetReadDeadline(time.Now().Add(t.opts.DialTimeout + t.opts.StaleReadTimeout)) //pstore:ignore seeddiscipline — I/O deadline arming, not a decision path
	payload, err := readShipFrame(br, &rbuf)
	if err != nil {
		return err
	}
	hello, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if hello.Snapshot {
		snap := &Snapshot{Tables: hello.Tables, LSN: hello.StartLSN, Epoch: hello.Epoch}
		for i := 0; i < hello.NBuckets; i++ {
			conn.SetReadDeadline(time.Now().Add(t.opts.AckTimeout)) //pstore:ignore seeddiscipline — I/O deadline arming, not a decision path
			payload, err := readShipFrame(br, &rbuf)
			if err != nil {
				return err
			}
			b, err := decodeBucketFrame(payload)
			if err != nil {
				return err
			}
			snap.Buckets = append(snap.Buckets, b)
		}
		if err := t.rep.InstallSnapshot(snap); err != nil {
			if errors.Is(err, ErrReplicaGone) {
				return errTailRetired
			}
			return err
		}
	}
	if err := t.rep.Sync(); err != nil {
		return err
	}
	if err := sendFrame(encodeAck(t.rep.AckLSN())); err != nil {
		return err
	}

	// Keepalive acks: the hub deposes silent subscribers after AckTimeout,
	// so re-ack the durable horizon well inside it even when the stream is
	// idle.
	t.startKeepalive(sessionDone, sendFrame)

	// Group fsync + pipelined ack: at each drained read buffer the replica
	// flushes its command log ONCE for every record applied since the last
	// drain and acks when the flush lands — a durable replica's ack is a
	// durability promise. The flush is asynchronous (requestSync on the
	// standby WAL), so the session keeps applying batch N+1 while batch N's
	// fsync is in flight; the callback runs on the WAL's group-commit
	// goroutine and acks are serialized by sendFrame's lock, duplicates and
	// reorders absorbed by the cumulative Ack on the feed side. A failed
	// flush severs the connection — the reconnect resyncs from the durable
	// horizon, never acking bytes that were not fsynced.
	var sinceSync int64
	ackDurable := func(err error) {
		if err != nil {
			conn.Close()
			return
		}
		if sendFrame(encodeAck(t.rep.AckLSN())) != nil {
			conn.Close()
		}
	}
	for {
		// The hub heartbeats idle streams at AckTimeout/3, so a read
		// deadline on the live stream is a liveness check: silence means
		// the primary is dead or the link is partitioned, and the session
		// dies instead of leaving this subscriber live at a stale ack
		// watermark (which would stall the primary's writes forever).
		conn.SetReadDeadline(time.Now().Add(t.opts.AckTimeout)) //pstore:ignore seeddiscipline — I/O deadline arming, not a decision path
		payload, err := readShipFrame(br, &rbuf)
		if err != nil {
			return err
		}
		if isHeartbeat(payload) {
			continue
		}
		switch {
		case len(payload) > 0 && payload[0] == msgBatch:
			count, rest, err := splitBatch(payload)
			if err != nil {
				return err
			}
			for i := uint64(0); i < count; i++ {
				var rp []byte
				rp, rest, err = nextBatchRecord(rest)
				if err != nil {
					return err
				}
				if err := t.applyOne(rp); err != nil {
					return err
				}
			}
			if len(rest) != 0 {
				return errShipTrailing
			}
			sinceSync += int64(count)
		case len(payload) > 0 && payload[0] >= msgSubscribe:
			if payload[0] == msgError {
				r := reader{data: payload[1:]}
				msg, _ := r.string()
				return fmt.Errorf("replication: hub severed stream: %s", msg)
			}
			return fmt.Errorf("replication: unexpected message kind %d mid-stream", payload[0])
		default:
			if err := t.applyOne(payload); err != nil {
				return err
			}
			sinceSync++
		}
		if br.Buffered() == 0 {
			t.events.Observe(metrics.HistReplStandbyFsyncBatch, sinceSync)
			sinceSync = 0
			t.rep.SyncAsync(ackDurable)
		}
	}
}

// applyOne decodes one record payload, applies it through the replica and
// appends it to the replica's own command log when freshly applied (not a
// duplicate-skip), so a respawn replays locally.
func (t *Tail) applyOne(payload []byte) error {
	rec, err := decodeRecord(payload)
	if err != nil {
		return err
	}
	applied := t.rep.Applied()
	if err := t.rep.Apply(rec); err != nil {
		if errors.Is(err, ErrReplicaGone) {
			return errTailRetired
		}
		return err
	}
	if rec.LSN > applied {
		if err := t.rep.LogRecord(rec); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tail) startKeepalive(sessionDone chan struct{}, sendFrame func([]byte) error) {
	interval := t.opts.AckTimeout / 3
	go func() {
		timer := time.NewTimer(interval)
		defer timer.Stop()
		for {
			select {
			case <-sessionDone:
				return
			case <-t.stop:
				return
			case <-timer.C:
			}
			if sendFrame(encodeAck(t.rep.AckLSN())) != nil {
				return
			}
			timer.Reset(interval)
		}
	}()
}
