package replication

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"pstore/internal/metrics"
)

// errTailRetired marks a session ended because the replica stopped serving
// (promoted or killed) — the tail exits instead of reconnecting.
var errTailRetired = errors.New("replication: tail retired")

// Tail is the replica-side shipping client: it dials the hub, subscribes
// from the replica's applied horizon, applies records and acks them, and
// reconnects with seeded jittered backoff when the stream dies — resyncing
// from a snapshot automatically when its position has fallen off the feed.
type Tail struct {
	addr   string
	rep    *Replica
	opts   Options
	events *metrics.Events
	wrap   func(net.Conn) net.Conn

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartTail launches the shipping client for the replica against the hub
// at addr. wrap (optional) interposes fault injection on each connection.
func StartTail(addr string, rep *Replica, wrap func(net.Conn) net.Conn, opts Options, events *metrics.Events) *Tail {
	t := &Tail{
		addr:   addr,
		rep:    rep,
		opts:   opts.Normalized(),
		events: events,
		wrap:   wrap,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go t.run()
	return t
}

// Stop terminates the tail and waits for its goroutine. Idempotent.
func (t *Tail) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

// run is the reconnect loop. Backoff doubles per consecutive failure with
// ±50% jitter drawn from the run's seed, so chaos runs replay and tails
// don't thundering-herd a recovering hub.
func (t *Tail) run() {
	defer close(t.done)
	rng := rand.New(rand.NewSource(t.opts.Seed ^ int64(t.rep.Partition())*0x9e3779b9))
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	backoff := t.opts.RetryBase
	for {
		select {
		case <-t.stop:
			return
		default:
		}
		err := t.session()
		if err == nil || errors.Is(err, errTailRetired) || !t.rep.Serving() {
			return
		}
		t.events.Add(metrics.EventReplResyncs, 1)
		d := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
		backoff *= 2
		if backoff > time.Second {
			backoff = time.Second
		}
		timer.Reset(d)
		select {
		case <-t.stop:
			return
		case <-timer.C:
		}
	}
}

// session runs one subscribe-and-apply stream. A nil return means the tail
// was asked to stop; any error triggers a reconnect.
func (t *Tail) session() error {
	d := net.Dialer{Timeout: t.opts.DialTimeout}
	conn, err := d.Dial("tcp", t.addr)
	if err != nil {
		return err
	}
	if t.wrap != nil {
		conn = t.wrap(conn)
	}
	defer conn.Close()

	// Severing the connection is the one reliable way to unblock the
	// reader; a watcher does it on Stop.
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	go func() {
		select {
		case <-t.stop:
			conn.Close()
		case <-sessionDone:
		}
	}()

	var wmu sync.Mutex
	bw := bufio.NewWriterSize(conn, 1<<14)
	sendFrame := func(b []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		armWriteDeadline(conn, t.opts.AckTimeout)
		if _, err := bw.Write(b); err != nil {
			return err
		}
		return bw.Flush()
	}

	if err := sendFrame(encodeSubscribe(t.rep.Partition(), t.rep.Applied(), t.rep.Epoch())); err != nil {
		return err
	}

	br := bufio.NewReaderSize(conn, 1<<16)
	var rbuf []byte
	conn.SetReadDeadline(time.Now().Add(t.opts.DialTimeout + t.opts.StaleReadTimeout)) //pstore:ignore seeddiscipline — I/O deadline arming, not a decision path
	payload, err := readShipFrame(br, &rbuf)
	if err != nil {
		return err
	}
	hello, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if hello.Snapshot {
		snap := &Snapshot{Tables: hello.Tables, LSN: hello.StartLSN, Epoch: hello.Epoch}
		for i := 0; i < hello.NBuckets; i++ {
			conn.SetReadDeadline(time.Now().Add(t.opts.AckTimeout)) //pstore:ignore seeddiscipline — I/O deadline arming, not a decision path
			payload, err := readShipFrame(br, &rbuf)
			if err != nil {
				return err
			}
			b, err := decodeBucketFrame(payload)
			if err != nil {
				return err
			}
			snap.Buckets = append(snap.Buckets, b)
		}
		if err := t.rep.InstallSnapshot(snap); err != nil {
			if errors.Is(err, ErrReplicaGone) {
				return errTailRetired
			}
			return err
		}
	}
	if err := t.rep.Sync(); err != nil {
		return err
	}
	if err := sendFrame(encodeAck(t.rep.AckLSN())); err != nil {
		return err
	}

	// Keepalive acks: the hub deposes silent subscribers after AckTimeout,
	// so re-ack the durable horizon well inside it even when the stream is
	// idle.
	t.startKeepalive(sessionDone, sendFrame)

	for {
		// The hub heartbeats idle streams at AckTimeout/3, so a read
		// deadline on the live stream is a liveness check: silence means
		// the primary is dead or the link is partitioned, and the session
		// dies instead of leaving this subscriber live at a stale ack
		// watermark (which would stall the primary's writes forever).
		conn.SetReadDeadline(time.Now().Add(t.opts.AckTimeout)) //pstore:ignore seeddiscipline — I/O deadline arming, not a decision path
		payload, err := readShipFrame(br, &rbuf)
		if err != nil {
			return err
		}
		if isHeartbeat(payload) {
			continue
		}
		if len(payload) > 0 && payload[0] >= msgSubscribe {
			if payload[0] == msgError {
				r := reader{data: payload[1:]}
				msg, _ := r.string()
				return fmt.Errorf("replication: hub severed stream: %s", msg)
			}
			return fmt.Errorf("replication: unexpected message kind %d mid-stream", payload[0])
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		applied := t.rep.Applied()
		if err := t.rep.Apply(rec); err != nil {
			if errors.Is(err, ErrReplicaGone) {
				return errTailRetired
			}
			return err
		}
		if rec.LSN > applied {
			// Freshly applied (not a duplicate-skip): append to the
			// replica's own command log so a respawn replays locally.
			if err := t.rep.LogRecord(rec); err != nil {
				return err
			}
		}
		// Ack at batch boundaries: one ack per drained read buffer keeps
		// the ack rate proportional to bursts, not records. A durable
		// replica flushes its log first — its ack is a durability promise.
		if br.Buffered() == 0 {
			if err := t.rep.Sync(); err != nil {
				return err
			}
			if err := sendFrame(encodeAck(t.rep.AckLSN())); err != nil {
				return err
			}
		}
	}
}

func (t *Tail) startKeepalive(sessionDone chan struct{}, sendFrame func([]byte) error) {
	interval := t.opts.AckTimeout / 3
	go func() {
		timer := time.NewTimer(interval)
		defer timer.Stop()
		for {
			select {
			case <-sessionDone:
				return
			case <-t.stop:
				return
			case <-timer.C:
			}
			if sendFrame(encodeAck(t.rep.AckLSN())) != nil {
				return
			}
			timer.Reset(interval)
		}
	}()
}
