package cluster

// Replication wiring: each partition's command log is wrapped in a
// replication.Feed shipped through one cluster-wide hub to k standby
// replicas hosted on other nodes. A monitor goroutine probes primaries and
// promotes the most caught-up replica when one dies — failover in seconds,
// not a disk replay in minutes — and respawns standbys to restore k.

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"pstore/internal/durability"
	"pstore/internal/engine"
	"pstore/internal/metrics"
	"pstore/internal/replication"
	"pstore/internal/storage"
)

// replicaHandle pairs a standby replica with its shipping client and the
// node hosting it.
type replicaHandle struct {
	rep  *replication.Replica
	tail *replication.Tail
	node int
}

// stalePrimary is a deposed primary the monitor could not reach to fence:
// the quorum vote authorized the failover, but a network partition hides the
// old primary, so its executor keeps running against a feed the hub has
// epoch-fenced. The monitor demotes it in place once its links heal.
type stalePrimary struct {
	pid  int
	node int
	exec *engine.Executor
	feed *replication.Feed
	mgr  *durability.Manager
}

// teardown stops the stale primary in place: fence first so nothing it
// finishes can ever be acked, then stop the executor and crash its log.
func (s *stalePrimary) teardown() {
	s.feed.Fence()
	if !s.exec.Stopped() {
		go s.exec.Stop()
	}
	if s.mgr != nil {
		s.mgr.Crash()
	}
}

// HandoffLog is the destination of migration bucket handoff records: the
// partition's replication feed when replication is on (so replicas see the
// ownership change in log order), else its durability manager directly.
type HandoffLog interface {
	LogBucketIn(data *storage.BucketData) error
	LogBucketOut(bucket int) error
}

// HandoffOf returns where the migrator must log the partition's bucket
// handoffs, or nil when the partition has neither feed nor durable log.
func (c *Cluster) HandoffOf(partition int) HandoffLog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if f, ok := c.feeds[partition]; ok {
		return f
	}
	if m, ok := c.durs[partition]; ok {
		return m
	}
	return nil
}

func (c *Cluster) replicationEnabled() bool { return c.cfg.ReplicationFactor > 0 }

// replOpts is the shipping configuration with the self-fencing quorum wired
// in: unless overridden, a primary arms once all k standbys are live and
// stops acknowledging writes whenever the live set drops below k.
func (c *Cluster) replOpts() replication.Options {
	o := c.cfg.Replication
	if o.RequiredSubscribers == 0 {
		o.RequiredSubscribers = c.cfg.ReplicationFactor
	}
	return o.Normalized()
}

// initReplication creates the hub and shipping state. Called from New
// before any partition starts, so feeds can register as they are created.
func (c *Cluster) initReplication() error {
	c.feeds = make(map[int]*replication.Feed)
	c.replicas = make(map[int][]*replicaHandle)
	c.epochs = make(map[int]uint64)
	c.deadNodes = make(map[int]bool)
	c.hub = replication.NewHub(c.replOpts(), c.events)
	if c.cfg.ReplicationConnWrap != nil {
		c.hub.SetConnWrapper(c.cfg.ReplicationConnWrap)
	}
	if err := c.hub.Listen("127.0.0.1:0"); err != nil {
		return fmt.Errorf("cluster: replication hub: %w", err)
	}
	return nil
}

// installFeedLocked wraps the partition's durability manager (nilable) in a
// replication feed at the partition's current epoch and registers it with
// the hub. Caller holds c.mu or owns c exclusively.
func (c *Cluster) installFeedLocked(pid int, mgr *durability.Manager) *replication.Feed {
	var start uint64
	if mgr != nil {
		start = mgr.Seq()
	}
	feed := replication.NewFeed(pid, mgr, c.epochs[pid], start, c.replOpts(), c.events)
	feed.SetSnapshotFunc(c.partitionSnapshotFunc(pid))
	c.feeds[pid] = feed
	c.epochs[pid] = feed.Epoch()
	if err := c.hub.Register(pid, feed); err != nil {
		// Registration is refused only below the hub's fencing floor, and a
		// startup feed precedes every fence — a refusal here is a programming
		// error, surfaced loudly like other New-time invariants.
		panic(fmt.Sprintf("cluster: registering partition %d feed: %v", pid, err))
	}
	return feed
}

// partitionSnapshotFunc returns the feed's consistent-cut provider: the cut
// runs inside the partition's current executor, so it can never interleave
// with appends and the captured LSN is exact.
func (c *Cluster) partitionSnapshotFunc(pid int) replication.SnapshotFunc {
	return func() (*replication.Snapshot, error) {
		c.mu.RLock()
		exec := c.execs[pid]
		feed := c.feeds[pid]
		c.mu.RUnlock()
		if exec == nil || feed == nil {
			return nil, fmt.Errorf("cluster: partition %d gone", pid)
		}
		var snap *replication.Snapshot
		err := exec.Do(func(p *storage.Partition) (int, error) {
			s := &replication.Snapshot{Tables: p.Tables(), LSN: feed.LSN(), Epoch: feed.Epoch()}
			for _, b := range p.OwnedBuckets() {
				data, err := p.CopyBucket(b)
				if err != nil {
					return 0, err
				}
				s.Buckets = append(s.Buckets, data)
			}
			snap = s
			return 0, nil
		})
		if err != nil {
			return nil, err
		}
		return snap, nil
	}
}

// startReplicationStandbys spawns the initial replicas and the failover
// monitor. Called once from New after routing is published.
func (c *Cluster) startReplicationStandbys() {
	c.mu.Lock()
	pids := make([]int, 0, len(c.execs))
	for pid := range c.execs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		c.spawnReplicasLocked(pid)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.monStop, c.monDone = stop, done
	c.mu.Unlock()
	go c.monitorLoop(stop, done)
}

func (c *Cluster) stopMonitor() {
	c.mu.Lock()
	stop, done := c.monStop, c.monDone
	c.monStop, c.monDone = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// nodeOfPartitionLocked returns the ID of the node hosting the partition's
// primary, or -1.
func (c *Cluster) nodeOfPartitionLocked(pid int) int {
	for _, n := range c.nodes {
		for _, p := range n.Partitions {
			if p == pid {
				return n.ID
			}
		}
	}
	return -1
}

// spawnReplicasLocked tops the partition's standby count back up to k,
// placing new replicas on alive nodes that host neither the primary nor an
// existing replica (falling back to any alive node when the cluster is too
// small for strict anti-affinity). Caller holds c.mu.
func (c *Cluster) spawnReplicasLocked(pid int) {
	if c.stopped || c.respawnPaused {
		return
	}
	used := map[int]bool{c.nodeOfPartitionLocked(pid): true}
	serving := 0
	for _, h := range c.replicas[pid] {
		if h.rep.Serving() {
			serving++
			used[h.node] = true
		}
	}
	var alive []int
	for _, n := range c.nodes {
		if !c.deadNodes[n.ID] {
			alive = append(alive, n.ID)
		}
	}
	if len(alive) == 0 {
		return
	}
	for serving < c.cfg.ReplicationFactor {
		nid := -1
		for i := 0; i < len(alive); i++ {
			cand := alive[(pid+i)%len(alive)]
			if !used[cand] {
				nid = cand
				break
			}
		}
		if nid < 0 {
			nid = alive[(pid+serving)%len(alive)] // anti-affinity impossible; redundancy still counts
		}
		used[nid] = true
		rep := c.newStandbyLocked(pid, nid)
		tail := replication.StartTail(c.hub.Addr(), rep, c.tailConnWrap(pid, nid), c.replOpts(), c.events)
		c.replicas[pid] = append(c.replicas[pid], &replicaHandle{rep: rep, tail: tail, node: nid})
		serving++
	}
}

// newStandbyLocked builds one standby replica for the partition on the given
// node. With durability on it opens the standby's own command log (replaying
// any previous incarnation's fsynced state before wire catch-up) — unless
// that directory is the partition's current durable home, i.e. a previously
// promoted standby's log now owned by the primary. Caller holds c.mu.
func (c *Cluster) newStandbyLocked(pid, nid int) *replication.Replica {
	node := fmt.Sprintf("node-%d", nid)
	if c.cfg.DataDir != "" {
		dir := c.replicaDir(pid, nid)
		if dir != c.homes[pid] {
			rep, err := replication.OpenReplica(pid, c.cfg.NBuckets, node, c.cfg.Registry, dir, c.cfg.Durability, c.replOpts(), c.events)
			if err != nil {
				// A corrupt or half-written directory must not wedge respawn
				// forever: start the standby over from a clean slate.
				os.RemoveAll(dir)
				rep, err = replication.OpenReplica(pid, c.cfg.NBuckets, node, c.cfg.Registry, dir, c.cfg.Durability, c.replOpts(), c.events)
			}
			if err == nil {
				return rep
			}
		}
	}
	return replication.NewReplica(pid, c.cfg.NBuckets, node, c.cfg.Registry, c.replOpts(), c.events)
}

// tailConnWrap composes the fault-injection connection wrapper with the
// directed link matrix for a standby on node nid: the remote endpoint is
// resolved per I/O operation, so the wrapped link follows the partition's
// primary across failovers.
func (c *Cluster) tailConnWrap(pid, nid int) func(net.Conn) net.Conn {
	inner := c.cfg.ReplicationConnWrap
	if c.cfg.LinkConnWrap == nil {
		return inner
	}
	remote := func() int {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return c.nodeOfPartitionLocked(pid)
	}
	return func(conn net.Conn) net.Conn {
		if inner != nil {
			conn = inner(conn)
		}
		return c.cfg.LinkConnWrap(conn, nid, remote)
	}
}

// SetRespawnPaused suspends (or resumes) the monitor's standby respawning —
// a chaos-test hook for staging double faults: with respawn paused, killing
// the promoted standby's primary leaves disk recovery as the only path.
func (c *Cluster) SetRespawnPaused(v bool) {
	c.mu.Lock()
	c.respawnPaused = v
	c.mu.Unlock()
}

// monitorLoop is the failover monitor: every HealthInterval it probes each
// primary executor (a stopped one fails over immediately; a wedged or
// unreachable one is deposed after ProbeStrikes consecutive probe failures,
// subject to the quorum vote), sweeps deposed-but-unreachable primaries
// whose links have healed, and respawns standbys for partitions below k.
func (c *Cluster) monitorLoop(stop, done chan struct{}) {
	defer close(done)
	opts := c.replOpts()
	ticker := time.NewTicker(opts.HealthInterval)
	defer ticker.Stop()
	strikes := make(map[int]int)
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		c.probePrimaries(stop, strikes, opts)
		c.sweepStalePrimaries()
		c.restoreReplicas()
	}
}

func (c *Cluster) probePrimaries(stop chan struct{}, strikes map[int]int, opts replication.Options) {
	c.mu.RLock()
	if c.stopped {
		c.mu.RUnlock()
		return
	}
	type probe struct {
		pid  int
		node int
		exec *engine.Executor
	}
	probes := make([]probe, 0, len(c.execs))
	for pid, e := range c.execs {
		probes = append(probes, probe{pid, c.nodeOfPartitionLocked(pid), e})
	}
	c.mu.RUnlock()
	sort.Slice(probes, func(i, j int) bool { return probes[i].pid < probes[j].pid })
	for _, pr := range probes {
		select {
		case <-stop:
			return
		default:
		}
		// A blocked monitor↔node link means the probe cannot observe the
		// primary at all — not even to see that it stopped. That is a probe
		// failure, never an immediate failover: the quorum vote decides
		// whether "I can't see it" means "it is gone".
		blocked := c.linkBlocked(MonitorNode, pr.node) || c.linkBlocked(pr.node, MonitorNode)
		switch {
		case !blocked && pr.exec.Stopped():
			delete(strikes, pr.pid)
			c.failoverPartition(pr.pid, pr.exec)
		case blocked || !pr.exec.Healthy(opts.ProbeTimeout):
			strikes[pr.pid]++
			if strikes[pr.pid] >= opts.ProbeStrikes {
				delete(strikes, pr.pid)
				c.failoverPartition(pr.pid, pr.exec)
			}
		default:
			delete(strikes, pr.pid)
		}
	}
}

// sweepStalePrimaries demotes deposed primaries whose links to the monitor
// have healed: fence, stop, crash — the rejoin path for a primary that kept
// running through its own deposition. Its node then hosts a fresh resyncing
// standby via the normal respawn pass.
func (c *Cluster) sweepStalePrimaries() {
	c.mu.Lock()
	var demote []*stalePrimary
	keep := c.stale[:0]
	for _, s := range c.stale {
		if !c.linkBlocked(MonitorNode, s.node) && !c.linkBlocked(s.node, MonitorNode) {
			demote = append(demote, s)
		} else {
			keep = append(keep, s)
		}
	}
	c.stale = keep
	c.mu.Unlock()
	for _, s := range demote {
		s.teardown()
		c.events.Add(metrics.EventReplStaleDemotions, 1)
	}
}

// restoreReplicas prunes dead standbys and spawns replacements so every
// partition converges back to k. Pruned standbys are killed BEFORE the
// respawn pass: a durable replacement on the same node reopens the dead
// incarnation's log directory, which must not still be held open.
func (c *Cluster) restoreReplicas() {
	var doomed []*replicaHandle
	var pids []int
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	for pid := range c.execs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		keep := c.replicas[pid][:0]
		for _, h := range c.replicas[pid] {
			if h.rep.Serving() && !c.deadNodes[h.node] {
				keep = append(keep, h)
			} else {
				doomed = append(doomed, h)
			}
		}
		c.replicas[pid] = keep
	}
	c.mu.Unlock()
	for _, h := range doomed {
		h.rep.Kill()
		go h.tail.Stop()
	}
	c.mu.Lock()
	if !c.stopped {
		for _, pid := range pids {
			c.spawnReplicasLocked(pid)
		}
	}
	c.mu.Unlock()
}

// deposeQuorum is the promotion vote: the monitor may depose a primary only
// with a majority of the partition's cohort — the monitor itself (an
// always-yes witness), the primary's node, and each serving standby's node.
// The primary's node assents only when the monitor's view of it is clean
// both ways (so the failed probes were real observations, not a partition);
// a standby assents only when the monitor can reach it AND it demonstrably
// cannot hear the primary (link blocked either way, or the primary is
// already stopped or fenced). The asymmetric split-brain case — monitor
// blind to a primary that standbys and clients still reach — musters only
// the monitor's own vote and is blocked, which is what guarantees at most
// one primary per epoch can ever commit.
func (c *Cluster) deposeQuorum(primaryNode int, oldExec *engine.Executor, oldFeed *replication.Feed, standbys []*replicaHandle) bool {
	cohort, yes := 1, 1 // the monitor itself
	if primaryNode >= 0 {
		cohort++
		if !c.linkBlocked(MonitorNode, primaryNode) && !c.linkBlocked(primaryNode, MonitorNode) {
			yes++
		}
	}
	primaryDead := oldExec.Stopped() || oldFeed.Unusable() != nil
	for _, h := range standbys {
		cohort++
		reachable := !c.linkBlocked(MonitorNode, h.node) && !c.linkBlocked(h.node, MonitorNode)
		cannotHear := primaryDead ||
			c.linkBlocked(primaryNode, h.node) || c.linkBlocked(h.node, primaryNode)
		if reachable && cannotHear {
			yes++
		}
	}
	return yes*2 > cohort
}

// failoverPartition deposes the partition's primary and promotes its most
// caught-up serving replica: win the quorum vote, fence the old feed and its
// epoch at the hub (nothing it holds may ever be acked), lift the replica's
// in-memory partition into a new executor at epoch+1 — durably recording the
// new epoch before it serves — and republish routing. The whole path touches
// no log replay — the replica is already at the replicated horizon, which is
// what makes failover a seconds-scale event.
func (c *Cluster) failoverPartition(pid int, oldExec *engine.Executor) {
	c.failoverMu.Lock()
	defer c.failoverMu.Unlock()

	c.mu.Lock()
	if c.stopped || c.execs[pid] != oldExec {
		c.mu.Unlock()
		return
	}
	oldFeed := c.feeds[pid]
	oldMgr := c.durs[pid]
	primaryNode := c.nodeOfPartitionLocked(pid)
	var cohort []*replicaHandle
	for _, h := range c.replicas[pid] {
		if h.rep.Serving() && !c.deadNodes[h.node] {
			cohort = append(cohort, h)
		}
	}
	c.mu.Unlock()
	if oldFeed == nil {
		return
	}

	if !c.deposeQuorum(primaryNode, oldExec, oldFeed, cohort) {
		c.events.Add(metrics.EventReplPromotionsBlocked, 1)
		return
	}

	primaryReachable := primaryNode < 0 ||
		(!c.linkBlocked(MonitorNode, primaryNode) && !c.linkBlocked(primaryNode, MonitorNode))

	// Coverage fence. An armed feed never acks past its standbys, so any
	// caught-up standby (or the seeding snapshot for the pre-arm prefix)
	// carries every acked write. A feed that never armed — typical for a
	// freshly promoted primary whose respawned standby hasn't attached yet —
	// acks on local durability alone, and its head may run past everything
	// the standbys hold. Promoting a lagging standby there would silently
	// drop acked writes, so:
	//   - unreachable primary: refuse the failover entirely. The partition
	//     waits out the cut; post-heal the still-subscribed tail catches up
	//     and the stalled pipeline resumes with nothing lost.
	//   - reachable primary, durable cluster: skip standby promotion and
	//     recover from the dead primary's own command log, which holds the
	//     full acked history.
	//   - reachable primary, in-memory cluster: promote the laggard anyway —
	//     with no disk there is nowhere the head could have survived (§11.1).
	forceDisk := false
	if c.replOpts().RequiredSubscribers > 0 && !oldFeed.Armed() {
		head := oldFeed.LSN()
		covered := false
		c.mu.RLock()
		for _, h := range c.replicas[pid] {
			if h.rep.Serving() && h.rep.Seeded() && !c.deadNodes[h.node] && h.rep.Applied() >= head {
				covered = true
				break
			}
		}
		c.mu.RUnlock()
		if !covered {
			if !primaryReachable {
				c.events.Add(metrics.EventReplPromotionsBlocked, 1)
				return
			}
			if c.cfg.DataDir != "" {
				forceDisk = true
			}
		}
	}

	c.events.Add(metrics.EventReplFailovers, 1)
	if primaryReachable {
		oldFeed.Fence()
		if !oldExec.Stopped() {
			// Wedged, not dead: drain it in the background. Its appends hit the
			// fenced feed, so nothing it finishes can be acked or shipped.
			go oldExec.Stop()
		}
		if oldMgr != nil {
			oldMgr.Crash()
		}
	} else {
		// The monitor cannot reach the deposed primary, so it cannot fence it
		// in place (doing so through shared memory would cheat the partition).
		// Hub-side epoch fencing below severs its subscribers, so it loses its
		// ack quorum and self-fences; the sweep demotes it after the heal.
		c.mu.Lock()
		c.stale = append(c.stale, &stalePrimary{pid: pid, node: primaryNode, exec: oldExec, feed: oldFeed, mgr: oldMgr})
		c.mu.Unlock()
	}

	c.mu.Lock()
	var best *replicaHandle
	bestIdx := -1
	for i, h := range c.replicas[pid] {
		// An unseeded standby (spawned but never snapshot-synced) holds
		// nothing and must not be promoted over disk recovery. forceDisk
		// means every standby provably lags the locally-acked head, so the
		// primary's own command log is the only complete copy.
		if forceDisk || !h.rep.Serving() || !h.rep.Seeded() || c.deadNodes[h.node] {
			continue
		}
		if best == nil || h.rep.Applied() > best.rep.Applied() {
			best, bestIdx = h, i
		}
	}
	if best != nil {
		c.replicas[pid] = append(c.replicas[pid][:bestIdx], c.replicas[pid][bestIdx+1:]...)
	}
	c.mu.Unlock()

	if best == nil {
		c.restartFromDisk(pid, oldExec, oldFeed, primaryReachable)
		return
	}

	part, applied, repEpoch, rmgr := best.rep.Promote()
	best.tail.Stop()
	for _, t := range c.cfg.Tables {
		part.CreateTable(t)
	}
	newEpoch := oldFeed.Epoch()
	if repEpoch > newEpoch {
		newEpoch = repEpoch
	}
	newEpoch++

	// Raise the hub's fencing floor before the new feed exists: stale ship
	// frames and subscriber streams below newEpoch are refused from here on,
	// even if this promotion is then abandoned by a concurrent Stop.
	c.hub.FencePartition(pid, newEpoch)

	var mgr *durability.Manager
	var home string
	switch {
	case rmgr != nil:
		// The standby's own command log is already fsynced to the replicated
		// horizon; it continues, unbroken, as the promoted primary's log — so
		// a second fault before the next snapshot still recovers every acked
		// write from this same directory.
		rmgr.Flush()
		mgr = rmgr
		home = best.rep.Dir()
	case c.cfg.DataDir != "":
		// Non-durable standby: the old log is fenced history; the promoted
		// state becomes the new durable baseline via a fresh snapshot at the
		// applied LSN.
		os.RemoveAll(c.partitionDir(pid))
		m, err := durability.Open(c.partitionDir(pid), pid, c.cfg.Durability)
		if err == nil {
			m.SetBaseSeq(applied)
			if serr := m.Snapshot(part); serr != nil {
				m.Close()
			} else {
				mgr = m
				home = c.partitionDir(pid)
			}
		}
	}

	ecfg := c.cfg.Engine
	feed := replication.NewFeed(pid, mgr, newEpoch, applied, c.replOpts(), c.events)
	feed.SetSnapshotFunc(c.partitionSnapshotFunc(pid))
	ecfg.Log = feed
	exec := engine.NewExecutor(part, c.cfg.Registry, ecfg)

	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		exec.Stop() //pstore:ignore lockdiscipline — only failoverPartition takes failoverMu and this executor is freshly built: no goroutine it waits on can want the lock
		feed.Close()
		if mgr != nil {
			mgr.Close()
		}
		return
	}
	if mgr != nil {
		c.durs[pid] = mgr
		c.homes[pid] = home
	} else {
		delete(c.durs, pid)
		delete(c.homes, pid)
	}
	c.feeds[pid] = feed
	c.execs[pid] = exec
	c.epochs[pid] = newEpoch
	c.movePartitionLocked(pid, best.node)
	if c.cfg.DataDir != "" {
		// The durable fencing record: the new epoch and home hit the manifest
		// before the promoted primary becomes routable.
		c.writeManifestLocked()
	}
	c.publishRoutingLocked()
	c.mu.Unlock()
	if err := c.hub.Register(pid, feed); err != nil {
		panic(fmt.Sprintf("cluster: registering promoted partition %d feed: %v", pid, err))
	}
	c.events.Add(metrics.EventReplPromotions, 1)
}

// restartFromDisk is the slow-path failover when no promotable replica
// exists: recover the partition from its recorded durable home — after a
// promoted durable standby dies, that is the standby's own command log, so
// even the double fault (primary, then its successor before any snapshot)
// loses no acked write. A primary the monitor cannot reach is never
// restarted over: its log may still be live on the far side of the
// partition, so the pid stays down until the sweep demotes it post-heal.
func (c *Cluster) restartFromDisk(pid int, oldExec *engine.Executor, oldFeed *replication.Feed, primaryReachable bool) {
	if c.cfg.DataDir == "" || !primaryReachable {
		return // nothing safe to recover from; the partition stays down
	}
	c.mu.RLock()
	home, ok := c.homes[pid]
	c.mu.RUnlock()
	if !ok {
		home = c.partitionDir(pid)
	}
	part := storage.NewPartition(pid, c.cfg.NBuckets, nil)
	for _, t := range c.cfg.Tables {
		part.CreateTable(t)
	}
	mgr, err := durability.Open(home, pid, c.cfg.Durability)
	if err != nil {
		return
	}
	if _, err := mgr.Recover(part, c.cfg.Registry); err != nil {
		mgr.Close()
		return
	}
	newEpoch := oldFeed.Epoch() + 1
	c.hub.FencePartition(pid, newEpoch)
	ecfg := c.cfg.Engine
	feed := replication.NewFeed(pid, mgr, newEpoch, mgr.Seq(), c.replOpts(), c.events)
	feed.SetSnapshotFunc(c.partitionSnapshotFunc(pid))
	ecfg.Log = feed
	exec := engine.NewExecutor(part, c.cfg.Registry, ecfg)
	c.mu.Lock()
	if c.stopped || c.execs[pid] != oldExec {
		c.mu.Unlock()
		exec.Stop()
		feed.Close()
		mgr.Close()
		return
	}
	c.durs[pid] = mgr
	c.homes[pid] = home
	c.feeds[pid] = feed
	c.execs[pid] = exec
	c.epochs[pid] = newEpoch
	c.writeManifestLocked()
	c.publishRoutingLocked()
	c.mu.Unlock()
	if err := c.hub.Register(pid, feed); err != nil {
		panic(fmt.Sprintf("cluster: registering recovered partition %d feed: %v", pid, err))
	}
	c.events.Add(metrics.EventReplPromotions, 1)
}

// movePartitionLocked reassigns the partition to the given node in the
// membership lists. Caller holds c.mu.
func (c *Cluster) movePartitionLocked(pid, toNode int) {
	for _, n := range c.nodes {
		for i, p := range n.Partitions {
			if p == pid {
				if n.ID == toNode {
					return
				}
				n.Partitions = append(n.Partitions[:i], n.Partitions[i+1:]...)
				break
			}
		}
	}
	for _, n := range c.nodes {
		if n.ID == toNode {
			n.Partitions = append(n.Partitions, pid)
			sort.Ints(n.Partitions)
			return
		}
	}
}

// KillNode simulates a node dying without warning (kill -9 scale): every
// replica it hosts stops serving, and every primary it hosts is killed —
// feed fenced first so nothing in flight can be acked, then the log crashes
// and the executor stops. The failover monitor promotes replacements.
func (c *Cluster) KillNode(id int) error {
	c.mu.Lock()
	var node *Node
	for _, n := range c.nodes {
		if n.ID == id {
			node = n
			break
		}
	}
	if node == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no node %d", id)
	}
	if !c.replicationEnabled() {
		c.mu.Unlock()
		return errors.New("cluster: KillNode requires replication (nothing would take over)")
	}
	if c.deadNodes[id] {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %d already dead", id)
	}
	alive := 0
	for _, n := range c.nodes {
		if !c.deadNodes[n.ID] {
			alive++
		}
	}
	if alive <= 1 {
		c.mu.Unlock()
		return errors.New("cluster: cannot kill the last alive node")
	}
	c.deadNodes[id] = true
	pids := append([]int(nil), node.Partitions...)
	var doomed []*replicaHandle
	for pid, hs := range c.replicas { //pstore:ignore determinism — kill sweep; every doomed handle dies, order across partitions is unobservable
		keep := hs[:0]
		for _, h := range hs {
			if h.node == id {
				doomed = append(doomed, h)
			} else {
				keep = append(keep, h)
			}
		}
		c.replicas[pid] = keep
	}
	c.mu.Unlock()

	for _, h := range doomed {
		h.rep.Kill()
		go h.tail.Stop()
	}
	for _, pid := range pids {
		c.KillPartition(pid)
	}
	return nil
}

// KillPartition kills one partition's primary in place: fence, crash the
// log, stop the executor. The monitor's next probe triggers the failover.
func (c *Cluster) KillPartition(pid int) {
	c.mu.RLock()
	feed := c.feeds[pid]
	mgr := c.durs[pid]
	exec := c.execs[pid]
	c.mu.RUnlock()
	if feed != nil {
		feed.Fence()
	}
	if mgr != nil {
		mgr.Crash()
	}
	if exec != nil {
		exec.Stop()
	}
}

// DeadNodes returns the IDs of killed nodes still in the membership.
func (c *Cluster) DeadNodes() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]int, 0, len(c.deadNodes))
	for id := range c.deadNodes {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// pickReplica returns one serving replica of the partition, round-robin, or
// nil when none exists.
func (c *Cluster) pickReplica(pid int) *replication.Replica {
	c.mu.RLock()
	var reps []*replication.Replica
	for _, h := range c.replicas[pid] {
		if h.rep.Serving() && !c.deadNodes[h.node] {
			reps = append(reps, h.rep)
		}
	}
	c.mu.RUnlock()
	if len(reps) == 0 {
		return nil
	}
	return reps[int(c.rrSeq.Add(1))%len(reps)]
}

// CallReadOnly routes a read-only transaction to a replica of the key's
// partition, enforcing session consistency: the replica waits until its
// applied LSN covers the session's last write to that partition before
// serving. With no replica available — or when the replica read fails
// (stale horizon, mid-promotion) — the read falls back to the primary,
// which trivially satisfies the session. Retries mirror Call.
func (c *Cluster) CallReadOnly(proc, key string, args map[string]string, session map[int]uint64) engine.Result {
	start := time.Now()
	c.offered.Add(start, 1)
	deadline := start.Add(c.cfg.retryBudget())
	bucket := storage.BucketOf(key, c.cfg.NBuckets)
	var res engine.Result
	for attempt := 0; ; attempt++ {
		rt := c.route.Load()
		pid := rt.owner[bucket]
		if rep := c.pickReplica(pid); rep != nil {
			out, err := rep.SessionRead(proc, key, args, session[pid])
			if err == nil {
				res = engine.Result{Out: out, Partition: pid}
				break
			}
			var notOwned *storage.ErrNotOwned
			if !errors.As(err, &notOwned) && !errors.Is(err, storage.ErrReadOnly) &&
				!errors.Is(err, replication.ErrStaleRead) && !errors.Is(err, replication.ErrReplicaGone) {
				res = engine.Result{Err: err, Partition: pid}
				break
			}
			// Replica cannot serve this read right now; the primary can.
			c.events.Add(metrics.EventReplFallbackReads, 1)
		}
		exec, ok := rt.execs[pid]
		if !ok {
			res = engine.Result{Err: fmt.Errorf("cluster: no executor for partition %d", pid)}
		} else {
			res = exec.Call(&engine.Txn{Proc: proc, Key: key, Args: args})
		}
		if errors.Is(res.Err, engine.ErrOverloaded) {
			c.events.Add(metrics.EventShed, 1)
			break
		}
		var notOwned *storage.ErrNotOwned
		retriable := errors.As(res.Err, &notOwned) ||
			errors.Is(res.Err, engine.ErrStopped) ||
			(res.Err != nil && !ok)
		if !retriable || attempt+1 >= c.cfg.retryAttempts() || time.Now().After(deadline) {
			break
		}
		c.events.Add(metrics.EventMigrationRetries, 1)
		time.Sleep(c.cfg.retryInterval())
	}
	res.Latency = time.Since(start)
	c.latencies.Record(time.Now(), res.Latency)
	return res
}

// WaitReplicasCaughtUp blocks until every serving replica's applied LSN has
// converged with its feed head — the quiesce step before a cluster-wide
// checksum. The workload must be stopped, or the heads keep moving.
func (c *Cluster) WaitReplicasCaughtUp(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		behind := ""
		c.mu.RLock()
		for pid, feed := range c.feeds { //pstore:ignore determinism — observability only: the timeout error names one arbitrary lagging replica
			target := feed.LSN()
			for _, h := range c.replicas[pid] {
				if h.rep.Serving() && !c.deadNodes[h.node] && h.rep.Applied() < target {
					behind = fmt.Sprintf("partition %d replica on node-%d at %d, feed at %d",
						pid, h.node, h.rep.Applied(), target)
				}
			}
		}
		c.mu.RUnlock()
		if behind == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: replicas not caught up after %v: %s", timeout, behind)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// QuiescedChecksum waits for replica horizons to converge, then returns the
// cluster content checksum — the one number chaos tests compare against a
// fault-free oracle run.
func (c *Cluster) QuiescedChecksum(timeout time.Duration) (uint64, int, error) {
	if c.replicationEnabled() {
		if err := c.WaitReplicasCaughtUp(timeout); err != nil {
			return 0, 0, err
		}
	}
	return c.ContentChecksum()
}

// partitionChecksum scans one partition into the cluster's order-free
// row checksum.
func partitionChecksum(p *storage.Partition) (uint64, int, error) {
	var sum uint64
	rows := 0
	for _, table := range p.Tables() {
		t := table
		if _, err := p.Scan(t, func(r storage.Row) bool {
			sum ^= rowChecksum(t, r)
			rows++
			return true
		}); err != nil {
			return 0, 0, err
		}
	}
	return sum, rows, nil
}

// VerifyReplicas proves every caught-up replica holds byte-equivalent
// content to its primary (checksum + row count). Run it quiesced, after
// WaitReplicasCaughtUp.
func (c *Cluster) VerifyReplicas() error {
	c.mu.RLock()
	pids := make([]int, 0, len(c.feeds))
	for pid := range c.feeds {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	type target struct {
		exec *engine.Executor
		feed *replication.Feed
		reps []*replicaHandle
	}
	targets := make(map[int]target, len(pids))
	for _, pid := range pids {
		t := target{exec: c.execs[pid], feed: c.feeds[pid]}
		for _, h := range c.replicas[pid] {
			if h.rep.Serving() && !c.deadNodes[h.node] {
				t.reps = append(t.reps, h)
			}
		}
		targets[pid] = t
	}
	c.mu.RUnlock()

	for _, pid := range pids {
		t := targets[pid]
		if t.exec == nil || len(t.reps) == 0 {
			continue
		}
		head := t.feed.LSN()
		var psum uint64
		var prows int
		err := t.exec.Do(func(p *storage.Partition) (int, error) {
			var perr error
			psum, prows, perr = partitionChecksum(p)
			return 0, perr
		})
		if errors.Is(err, engine.ErrStopped) {
			continue // mid-failover; the next quiesce pass will see the new primary
		}
		if err != nil {
			return err
		}
		for _, h := range t.reps {
			if got := h.rep.Applied(); got != head {
				return fmt.Errorf("cluster: partition %d replica on node-%d at LSN %d, feed at %d", pid, h.node, got, head)
			}
			var rsum uint64
			var rrows int
			var rerr error
			h.rep.Inspect(func(p *storage.Partition) {
				rsum, rrows, rerr = partitionChecksum(p)
			})
			if rerr != nil {
				return rerr
			}
			if rsum != psum || rrows != prows {
				return fmt.Errorf("cluster: partition %d replica on node-%d diverged: %d rows sum %x, primary %d rows sum %x",
					pid, h.node, rrows, rsum, prows, psum)
			}
		}
	}
	return nil
}

// ReplicationStats is a point-in-time summary of the shipping subsystem.
type ReplicationStats struct {
	Factor            int    // configured k
	Replicas          int    // serving standbys across all partitions
	MaxLagRecords     uint64 // worst feed-head minus replica-applied gap
	Records           int64  // records shipped
	Failovers         int64
	Promotions        int64
	Resyncs           int64
	StaleWaits        int64 // session reads that had to wait for the horizon
	ReplicaReads      int64
	FallbackReads     int64
	FencedWrites      int64 // appends refused by a fenced/closed feed
	QuorumLosses      int64 // armed primaries that dropped below quorum
	QuorumLostWrites  int64 // writes shed pre-execution during quorum loss
	PromotionsBlocked int64 // failover attempts the quorum vote refused
	StaleDemotions    int64 // deposed primaries demoted in place after heal
}

// ReplicationStats reports the current shipping state and counters.
func (c *Cluster) ReplicationStats() ReplicationStats {
	s := ReplicationStats{
		Factor:            c.cfg.ReplicationFactor,
		Records:           c.events.Get(metrics.EventReplRecords),
		Failovers:         c.events.Get(metrics.EventReplFailovers),
		Promotions:        c.events.Get(metrics.EventReplPromotions),
		Resyncs:           c.events.Get(metrics.EventReplResyncs),
		StaleWaits:        c.events.Get(metrics.EventReplStaleWaits),
		ReplicaReads:      c.events.Get(metrics.EventReplicaReads),
		FallbackReads:     c.events.Get(metrics.EventReplFallbackReads),
		FencedWrites:      c.events.Get(metrics.EventReplFencedWrites),
		QuorumLosses:      c.events.Get(metrics.EventReplQuorumLost),
		QuorumLostWrites:  c.events.Get(metrics.EventReplQuorumLostWrites),
		PromotionsBlocked: c.events.Get(metrics.EventReplPromotionsBlocked),
		StaleDemotions:    c.events.Get(metrics.EventReplStaleDemotions),
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for pid, feed := range c.feeds {
		head := feed.LSN()
		for _, h := range c.replicas[pid] {
			if !h.rep.Serving() || c.deadNodes[h.node] {
				continue
			}
			s.Replicas++
			if lag := head - h.rep.Applied(); lag > s.MaxLagRecords {
				s.MaxLagRecords = lag
			}
		}
	}
	return s
}
