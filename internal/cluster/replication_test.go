package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pstore/internal/engine"
	"pstore/internal/metrics"
	"pstore/internal/replication"
)

func replConfig(k int) Config {
	cfg := testConfig()
	cfg.ReplicationFactor = k
	cfg.Replication = replication.Options{Seed: 1}
	return cfg
}

func waitQuiesced(t *testing.T, c *Cluster) {
	t.Helper()
	if err := c.WaitReplicasCaughtUp(10 * time.Second); err != nil {
		t.Fatalf("WaitReplicasCaughtUp: %v", err)
	}
}

func TestReplicatedWritesReachReplicas(t *testing.T) {
	c, err := New(replConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": key}})
		if res.Err != nil {
			t.Fatalf("put %s: %v", key, res.Err)
		}
		if res.LSN == 0 {
			t.Fatalf("put %s: result carries no LSN", key)
		}
	}
	waitQuiesced(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatalf("VerifyReplicas: %v", err)
	}
	s := c.ReplicationStats()
	if s.Factor != 1 {
		t.Errorf("Factor = %d, want 1", s.Factor)
	}
	if want := 2 * 2; s.Replicas != want { // one standby per partition
		t.Errorf("Replicas = %d, want %d", s.Replicas, want)
	}
	if s.Records < 200 {
		t.Errorf("Records = %d, want ≥ 200", s.Records)
	}
	if s.MaxLagRecords != 0 {
		t.Errorf("MaxLagRecords = %d after quiesce, want 0", s.MaxLagRecords)
	}
}

func TestLoadRowShipsToReplicas(t *testing.T) {
	c, err := New(replConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("load%d", i)
		if err := c.LoadRow("T", key, map[string]string{"v": key}); err != nil {
			t.Fatalf("LoadRow %s: %v", key, err)
		}
	}
	waitQuiesced(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatalf("VerifyReplicas after LoadRow: %v", err)
	}
}

func TestKillNodeFailoverPreservesAckedWrites(t *testing.T) {
	cfg := replConfig(1)
	cfg.DataDir = t.TempDir()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	put := func(key string) error {
		res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": key}})
		return res.Err
	}
	for i := 0; i < 200; i++ {
		if err := put(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("put before kill: %v", err)
		}
	}
	waitQuiesced(t, c)

	victim := c.Nodes()[1].ID
	start := time.Now()
	if err := c.KillNode(victim); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	// Writes must keep succeeding through the failover (retried by Call).
	for i := 200; i < 400; i++ {
		if err := put(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("put during failover: %v", err)
		}
	}
	elapsed := time.Since(start)
	if elapsed > 15*time.Second {
		t.Fatalf("failover + 200 writes took %v, want seconds-scale", elapsed)
	}

	// Every acked write must be readable from the promoted primaries.
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("k%d", i)
		res := c.Call(&engine.Txn{Proc: "Get", Key: key})
		if res.Err != nil {
			t.Fatalf("get %s after failover: %v", key, res.Err)
		}
		if res.Out["v"] != key {
			t.Errorf("get %s = %q after failover", key, res.Out["v"])
		}
	}

	s := c.ReplicationStats()
	if s.Failovers == 0 || s.Promotions == 0 {
		t.Errorf("stats after kill: failovers=%d promotions=%d, want both > 0", s.Failovers, s.Promotions)
	}
	// The monitor respawns standbys on the surviving node; once they are
	// caught up the replicas must mirror the promoted primaries exactly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.WaitReplicasCaughtUp(10 * time.Second); err == nil {
			if err := c.VerifyReplicas(); err == nil {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("VerifyReplicas after failover: %v", err)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("replicas never converged after failover: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestKillNodeContentChecksumMatchesOracle(t *testing.T) {
	// Oracle: the same writes with no fault.
	oracle, err := New(replConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Stop()
	c, err := New(replConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	write := func(cl *Cluster, i int) error {
		key := fmt.Sprintf("w%d", i)
		res := cl.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": key}})
		return res.Err
	}
	for i := 0; i < 150; i++ {
		if err := write(oracle, i); err != nil {
			t.Fatal(err)
		}
		if err := write(c, i); err != nil {
			t.Fatal(err)
		}
	}
	// With no DataDir the replicas are the only redundancy; writes made
	// before they seed have nowhere to survive a kill, so quiesce first —
	// that matches the k-safety contract (acks gate on live subscribers).
	waitQuiesced(t, c)
	if err := c.KillNode(c.Nodes()[0].ID); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	for i := 150; i < 300; i++ {
		if err := write(oracle, i); err != nil {
			t.Fatal(err)
		}
		if err := write(c, i); err != nil {
			t.Fatalf("write %d during failover: %v", i, err)
		}
	}
	wantSum, wantRows, err := oracle.QuiescedChecksum(10 * time.Second)
	if err != nil {
		t.Fatalf("oracle checksum: %v", err)
	}
	gotSum, gotRows, err := c.QuiescedChecksum(10 * time.Second)
	if err != nil {
		t.Fatalf("faulted checksum: %v", err)
	}
	if gotSum != wantSum || gotRows != wantRows {
		t.Fatalf("checksum after kill = %x (%d rows), oracle %x (%d rows)", gotSum, gotRows, wantSum, wantRows)
	}
}

func TestCallReadOnlySessionConsistency(t *testing.T) {
	c, err := New(replConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	session := make(map[int]uint64)
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("s%d", i)
		res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": key}})
		if res.Err != nil {
			t.Fatalf("put: %v", res.Err)
		}
		mu.Lock()
		if res.LSN > session[res.Partition] {
			session[res.Partition] = res.LSN
		}
		mu.Unlock()
		// Read-your-writes: the replica must wait for the write just made.
		r := c.CallReadOnly("Get", key, nil, session)
		if r.Err != nil {
			t.Fatalf("read %s: %v", key, r.Err)
		}
		if r.Out["v"] != key {
			t.Fatalf("read %s = %q, session consistency violated", key, r.Out["v"])
		}
	}
	s := c.ReplicationStats()
	if s.ReplicaReads == 0 && s.FallbackReads == 0 {
		t.Error("no replica or fallback reads recorded")
	}
}

func TestCallReadOnlyFallsBackWhenStale(t *testing.T) {
	cfg := replConfig(1)
	cfg.Replication.StaleReadTimeout = 5 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	key := "fb"
	res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": "1"}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// A session claiming an LSN far past the feed head can never be served
	// by a replica; the read must fall back to the primary, not fail.
	session := map[int]uint64{res.Partition: res.LSN + 1_000_000}
	r := c.CallReadOnly("Get", key, nil, session)
	if r.Err != nil {
		t.Fatalf("fallback read: %v", r.Err)
	}
	if r.Out["v"] != "1" {
		t.Fatalf("fallback read = %q", r.Out["v"])
	}
	if got := c.Events().Get(metrics.EventReplFallbackReads); got == 0 {
		t.Error("fallback not counted")
	}
}

func TestKillNodeValidation(t *testing.T) {
	c, err := New(testConfig()) // replication off
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.KillNode(c.Nodes()[0].ID); err == nil {
		t.Error("KillNode without replication should fail")
	}

	r, err := New(replConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.KillNode(9999); err == nil {
		t.Error("KillNode of unknown node should fail")
	}
	n0, n1 := r.Nodes()[0].ID, r.Nodes()[1].ID
	if err := r.KillNode(n0); err != nil {
		t.Fatalf("first kill: %v", err)
	}
	if err := r.KillNode(n0); err == nil {
		t.Error("double kill should fail")
	}
	if err := r.KillNode(n1); err == nil {
		t.Error("killing the last alive node should fail")
	}
	if got := r.DeadNodes(); len(got) != 1 || got[0] != n0 {
		t.Errorf("DeadNodes = %v", got)
	}
}

func TestReplicationDurableRestart(t *testing.T) {
	cfg := replConfig(1)
	cfg.DataDir = t.TempDir()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("d%d", i)
		if res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": key}}); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	waitQuiesced(t, c)
	sum1, rows1, err := c.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()

	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer c2.Stop()
	if !c2.Recovered() {
		t.Fatal("expected recovery from DataDir")
	}
	sum2, rows2, err := c2.ContentChecksum()
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum2 || rows1 != rows2 {
		t.Fatalf("restart checksum %x (%d rows), want %x (%d rows)", sum2, rows2, sum1, rows1)
	}
	// Fresh standbys must resync and converge after the restart too.
	waitQuiesced(t, c2)
	if err := c2.VerifyReplicas(); err != nil {
		t.Fatalf("VerifyReplicas after restart: %v", err)
	}
}

func TestFencedFeedRejectsWrites(t *testing.T) {
	f := replication.NewFeed(0, nil, 1, 0, replication.Options{}, metrics.NewEvents())
	f.Fence()
	done := make(chan error, 1)
	f.Append("Put", "k", nil, func(_ uint64, err error) { done <- err })
	if err := <-done; !errors.Is(err, replication.ErrFenced) {
		t.Fatalf("append to fenced feed: %v, want ErrFenced", err)
	}
}
