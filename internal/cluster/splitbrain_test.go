package cluster

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"pstore/internal/engine"
	"pstore/internal/faultinject"
	"pstore/internal/replication"
	"pstore/internal/storage"
)

// chaosSeed returns the schedule seed, overridable via PSTORE_CHAOS_SEED so
// CI can sweep seeds without editing tests.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("PSTORE_CHAOS_SEED")
	if v == "" {
		return 1
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("bad PSTORE_CHAOS_SEED %q: %v", v, err)
	}
	return n
}

// fastReplOpts are failover timings scaled for tests: probes every 10ms,
// three strikes, subscriber ack timeout 200ms.
func fastReplOpts(t *testing.T) replication.Options {
	return replication.Options{
		Seed:           chaosSeed(t),
		HealthInterval: 10 * time.Millisecond,
		ProbeTimeout:   50 * time.Millisecond,
		ProbeStrikes:   3,
		AckTimeout:     200 * time.Millisecond,
	}
}

// splitBrainConfig wires a partition matrix into a k=1 replicated cluster:
// the monitor's probes and vote consult the matrix, and every replication
// tail's connection is gated on the standby↔primary link.
func splitBrainConfig(t *testing.T) (Config, *faultinject.Matrix) {
	t.Helper()
	cfg := replConfig(1)
	cfg.Replication = fastReplOpts(t)
	m := faultinject.NewMatrix()
	cfg.Links = m
	cfg.LinkConnWrap = m.WrapConn
	return cfg, m
}

func mustPut(t *testing.T, c *Cluster, key string) int {
	t.Helper()
	res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": key}})
	if res.Err != nil {
		t.Fatalf("put %s: %v", key, res.Err)
	}
	return res.Partition
}

func mustGet(t *testing.T, c *Cluster, key, want string) {
	t.Helper()
	res := c.Call(&engine.Txn{Proc: "Get", Key: key})
	if res.Err != nil {
		t.Fatalf("get %s: %v", key, res.Err)
	}
	if res.Out["v"] != want {
		t.Fatalf("get %s = %q, want %q: acked write lost", key, res.Out["v"], want)
	}
}

func waitStat(t *testing.T, c *Cluster, what string, timeout time.Duration, get func(ReplicationStats) int64, min int64) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for get(c.ReplicationStats()) < min {
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %d (stats %+v)", what, min, c.ReplicationStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSplitBrainMonitorBlindPromotionBlocked is the asymmetric split-brain:
// the monitor loses sight of a node whose primaries are perfectly healthy —
// standbys still hear them, clients still commit. The quorum vote must
// refuse the depose (only the monitor's own vote says "gone"), because
// promoting here would mint a second live primary for the same data.
func TestSplitBrainMonitorBlindPromotionBlocked(t *testing.T) {
	cfg, m := splitBrainConfig(t)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 100; i++ {
		mustPut(t, c, fmt.Sprintf("mb%d", i))
	}
	waitQuiesced(t, c)

	victim := c.Nodes()[0].ID
	m.BlockPair(MonitorNode, victim)

	// The monitor strikes out and calls the vote; the vote must block it.
	waitStat(t, c, "blocked promotions", 10*time.Second,
		func(s ReplicationStats) int64 { return s.PromotionsBlocked }, 1)

	// The blind spot costs nothing: the primaries keep committing with
	// their full ack quorum while the monitor is locked out.
	for i := 100; i < 150; i++ {
		mustPut(t, c, fmt.Sprintf("mb%d", i))
	}
	if s := c.ReplicationStats(); s.Failovers != 0 || s.Promotions != 0 {
		t.Fatalf("monitor-blind partition caused a failover: %+v", s)
	}

	m.HealPair(MonitorNode, victim)
	// Clean probes reset the strike counts: no delayed depose fires.
	time.Sleep(15 * cfg.Replication.HealthInterval)
	if s := c.ReplicationStats(); s.Promotions != 0 {
		t.Fatalf("healed monitor deposed a healthy primary: %+v", s)
	}
	for i := 0; i < 150; i++ {
		key := fmt.Sprintf("mb%d", i)
		mustGet(t, c, key, key)
	}
	waitQuiesced(t, c)
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}

// TestSplitBrainIsolatedPrimaryQuorumFailover is the real split-brain: a
// node is cut off from the monitor AND its peers. The vote passes (each
// standby is reachable and demonstrably cannot hear its primary), the
// standbys are promoted at a higher epoch, and the marooned primaries —
// still running, unreachable, unfenceable — lose their ack quorum to the
// hub's epoch fence and self-fence. After the heal they are demoted in
// place and their node rejoins as a standby host. No acked write is lost
// and the final state matches a fault-free oracle byte for byte.
func TestSplitBrainIsolatedPrimaryQuorumFailover(t *testing.T) {
	cfg, m := splitBrainConfig(t)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	oracle, err := New(replConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Stop()

	want := make(map[string]string)
	keyPid := make(map[string]int)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("ip%d", i)
		keyPid[key] = mustPut(t, c, key)
		mustPut(t, oracle, key)
		want[key] = key
	}
	waitQuiesced(t, c)

	victim := c.Nodes()[0].ID
	other := c.Nodes()[1].ID
	victimPids := append([]int(nil), c.Nodes()[0].Partitions...)
	onVictim := make(map[int]bool)
	for _, pid := range victimPids {
		onVictim[pid] = true
	}
	// Keys living on the partitions about to be marooned, in write order.
	var victimKeys []string
	for i := 0; i < 100; i++ {
		if key := fmt.Sprintf("ip%d", i); onVictim[keyPid[key]] {
			victimKeys = append(victimKeys, key)
		}
	}
	if len(victimKeys) < 2 {
		t.Fatalf("only %d keys on the victim's partitions", len(victimKeys))
	}
	stragglerKey := victimKeys[0]
	victimKeys = victimKeys[1:]

	cutAt := time.Now()
	m.BlockPair(MonitorNode, victim)
	m.BlockPair(other, victim)

	// A write racing the cut lands on a marooned primary and stalls in the
	// ack wait (self-fencing never fails an executed write — that would
	// double-apply on retry). It must eventually complete: the post-heal
	// demotion fences the stale primary, the retry lands on the promoted
	// successor, and the marooned copy's effects die with the deposition.
	straggler := make(chan error, 1)
	go func() {
		res := c.Call(&engine.Txn{Proc: "Put", Key: stragglerKey, Args: map[string]string{"v": "rescued"}})
		straggler <- res.Err
	}()
	res := oracle.Call(&engine.Txn{Proc: "Put", Key: stragglerKey, Args: map[string]string{"v": "rescued"}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want[stragglerKey] = "rescued"

	// Every marooned partition fails over to its standby on the live side.
	waitStat(t, c, "promotions", 15*time.Second,
		func(s ReplicationStats) int64 { return s.Promotions }, int64(len(victimPids)))
	if s := c.ReplicationStats(); s.Failovers == 0 {
		t.Fatalf("promotions without failovers: %+v", s)
	}
	t.Logf("cut→all %d partitions promoted in %v", len(victimPids), time.Since(cutAt))

	// Mid-cut writes flow through the promoted primaries. (Only the marooned
	// partitions accept writes during the cut: the survivor node's own
	// primaries lost their cross-hosted standbys to the same cut and
	// self-fence until the heal — availability is surrendered exactly where
	// redundancy is gone, never correctness.)
	for _, key := range victimKeys {
		res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": key + "-2"}})
		if res.Err != nil {
			t.Fatalf("mid-cut put %s: %v", key, res.Err)
		}
		res = oracle.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": key + "-2"}})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want[key] = key + "-2"
	}

	m.HealAll()

	// The marooned primaries are demoted in place once reachable again.
	waitStat(t, c, "stale demotions", 15*time.Second,
		func(s ReplicationStats) int64 { return s.StaleDemotions }, int64(len(victimPids)))

	// Rejoin: the deposed node comes back as a standby host for the
	// partitions it lost.
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		c.mu.RLock()
		for _, pid := range victimPids {
			found := false
			for _, h := range c.replicas[pid] {
				if h.node == victim && h.rep.Serving() && h.rep.Seeded() {
					found = true
				}
			}
			ok = ok && found
		}
		c.mu.RUnlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deposed node never rejoined as a standby host")
		}
		time.Sleep(10 * time.Millisecond)
	}

	select {
	case err := <-straggler:
		if err != nil {
			t.Fatalf("straggler write failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("straggler write never completed after heal")
	}

	wantSum, wantRows, err := oracle.QuiescedChecksum(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gotSum, gotRows, err := c.QuiescedChecksum(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if gotSum != wantSum || gotRows != wantRows {
		t.Fatalf("post-heal checksum %x (%d rows), oracle %x (%d rows): split-brain diverged state",
			gotSum, gotRows, wantSum, wantRows)
	}
	for key, v := range want {
		mustGet(t, c, key, v)
	}
	if err := c.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
	s := c.ReplicationStats()
	t.Logf("isolation stats: failovers=%d promotions=%d blocked=%d stale_demotions=%d fenced_writes=%d quorum_losses=%d shed_writes=%d resyncs=%d",
		s.Failovers, s.Promotions, s.PromotionsBlocked, s.StaleDemotions,
		s.FencedWrites, s.QuorumLosses, s.QuorumLostWrites, s.Resyncs)
}

// TestSplitBrainChaosScheduleConvergence runs a seeded random partition
// schedule — directed cuts among both nodes and the monitor — under a
// durable replicated cluster while a client writes through it with retries.
// After the schedule drains and links heal, the cluster must converge to
// exactly the fault-free oracle's state: same checksum, same row count.
func TestSplitBrainChaosScheduleConvergence(t *testing.T) {
	inj := faultinject.New(faultinject.Options{
		Seed:           chaosSeed(t),
		PartitionProb:  0.4,
		PartitionFor:   120 * time.Millisecond,
		PartitionEvery: 15 * time.Millisecond,
	})
	m := inj.Matrix()
	cfg := replConfig(1)
	cfg.Replication = fastReplOpts(t)
	cfg.Links = m
	cfg.LinkConnWrap = m.WrapConn
	cfg.DataDir = t.TempDir()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	oracle, err := New(replConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Stop()

	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("ch%d", i)
		mustPut(t, c, key)
		mustPut(t, oracle, key)
	}
	waitQuiesced(t, c)

	stop := make(chan struct{})
	done := inj.PartitionLoop(func() []int {
		eps := []int{MonitorNode}
		for _, n := range c.Nodes() {
			eps = append(eps, n.ID)
		}
		return eps
	}, stop)

	// Writes are idempotent puts retried to success, so the acked set is
	// identical to the oracle's no matter how the schedule interleaves
	// failovers, sheds, and stalls.
	writeStart := time.Now()
	for i := 50; i < 200; i++ {
		key := fmt.Sprintf("ch%d", i)
		deadline := time.Now().Add(60 * time.Second)
		for {
			res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": key}})
			if res.Err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("put %s never succeeded under chaos: %v", key, res.Err)
			}
		}
		mustPut(t, oracle, key)
	}

	writeDur := time.Since(writeStart)
	close(stop)
	<-done
	m.HealAll()
	healAt := time.Now()

	wantSum, wantRows, err := oracle.QuiescedChecksum(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Convergence: stale primaries demoted, partitions recovered, respawned
	// standbys caught up. Retry the quiesce until the monitor settles.
	var gotSum uint64
	var gotRows int
	deadline := time.Now().Add(60 * time.Second)
	for {
		gotSum, gotRows, err = c.QuiescedChecksum(10 * time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never quiesced after chaos: %v", err)
		}
	}
	if gotSum != wantSum || gotRows != wantRows {
		t.Fatalf("post-chaos checksum %x (%d rows), oracle %x (%d rows)", gotSum, gotRows, wantSum, wantRows)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("ch%d", i)
		mustGet(t, c, key, key)
	}
	fc := inj.Counters()
	s := c.ReplicationStats()
	t.Logf("chaos schedule: cuts=%d heals=%d blackholes=%d over %v of writes; converged %v after heal",
		fc.Cuts, fc.Heals, fc.Blackholes, writeDur.Round(time.Millisecond), time.Since(healAt).Round(time.Millisecond))
	t.Logf("chaos stats: failovers=%d promotions=%d blocked=%d stale_demotions=%d fenced_writes=%d quorum_losses=%d shed_writes=%d resyncs=%d",
		s.Failovers, s.Promotions, s.PromotionsBlocked, s.StaleDemotions,
		s.FencedWrites, s.QuorumLosses, s.QuorumLostWrites, s.Resyncs)
}

// TestDoubleFaultDurableStandbyRecovery: kill a primary, let its durable
// standby take over, then kill the successor before any snapshot — with
// respawn paused so no new standby can absorb the second fault. Recovery
// must come from the promoted standby's own command log, which the
// promotion carried over as the partition's durable home, and lose zero
// acked writes.
func TestDoubleFaultDurableStandbyRecovery(t *testing.T) {
	cfg := replConfig(1)
	cfg.Replication = fastReplOpts(t)
	cfg.DataDir = t.TempDir()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	byPid := make(map[int][]string)
	for i := 0; i < 120; i++ {
		key := fmt.Sprintf("df%d", i)
		pid := mustPut(t, c, key)
		byPid[pid] = append(byPid[pid], key)
	}
	waitQuiesced(t, c)

	pid := c.Nodes()[0].Partitions[0]
	for i := 120; len(byPid[pid]) < 10; i++ {
		key := fmt.Sprintf("df%d", i)
		if p := mustPut(t, c, key); p == pid {
			byPid[pid] = append(byPid[pid], key)
		}
	}
	waitQuiesced(t, c)

	// Respawn paused: after the standby is promoted, nothing replaces it.
	c.SetRespawnPaused(true)

	c.KillPartition(pid)
	waitStat(t, c, "first promotion", 15*time.Second,
		func(s ReplicationStats) int64 { return s.Promotions }, 1)

	// Acked writes between the faults exist only in the promoted standby's
	// continued command log (group commit, no snapshot, no replicas).
	for _, key := range byPid[pid] {
		res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": key + "-2"}})
		if res.Err != nil {
			t.Fatalf("put %s after first failover: %v", key, res.Err)
		}
	}

	// The promotion must have carried the standby's log over as the
	// partition's durable home.
	c.mu.RLock()
	home := c.homes[pid]
	c.mu.RUnlock()
	if !strings.Contains(home, "replica-") {
		t.Fatalf("durable home after promotion = %q, want the promoted standby's own log dir", home)
	}

	// Second fault: the successor dies before any snapshot.
	secondKill := time.Now()
	c.KillPartition(pid)
	waitStat(t, c, "disk recovery", 15*time.Second,
		func(s ReplicationStats) int64 { return s.Promotions }, 2)
	t.Logf("second fault recovered from the promoted standby's log in %v", time.Since(secondKill))

	for _, key := range byPid[pid] {
		mustGet(t, c, key, key+"-2")
	}

	// Back to normal operation: respawn resumes, replicas converge.
	c.SetRespawnPaused(false)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := c.WaitReplicasCaughtUp(15 * time.Second); err == nil {
			if err := c.VerifyReplicas(); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas never converged after double fault")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeposeQuorumVote checks the promotion vote's accounting directly —
// the safety function that makes "I can't see it" different from "it is
// gone". The cohort is the monitor (always yes), the primary's node (yes
// iff the monitor's view of it is clean both ways) and each standby's node
// (yes iff monitor-reachable and demonstrably deaf to the primary).
func TestDeposeQuorumVote(t *testing.T) {
	m := faultinject.NewMatrix()
	cfg := testConfig()
	cfg.Links = m
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	part := storage.NewPartition(99, 4, []int{0, 1, 2, 3})
	part.CreateTable("T")
	liveExec := engine.NewExecutor(part, testRegistry(), engine.Config{})
	defer liveExec.Stop()
	deadPart := storage.NewPartition(98, 4, nil)
	deadExec := engine.NewExecutor(deadPart, testRegistry(), engine.Config{})
	deadExec.Stop()
	feed := replication.NewFeed(99, nil, 1, 0, replication.Options{Seed: 1}, c.Events())
	defer feed.Close()
	standby := []*replicaHandle{{node: 1}}

	const primary = 0
	cases := []struct {
		name  string
		setup func()
		exec  *engine.Executor
		want  bool
	}{
		{"fail-stop, all links clear", func() {}, deadExec, true},
		{"wedged but alive, links clear (monitor's observations trusted)", func() {}, liveExec, true},
		{"monitor blind to primary, standby still hears it", func() {
			m.BlockPair(MonitorNode, primary)
		}, liveExec, false},
		{"primary fully isolated", func() {
			m.BlockPair(MonitorNode, primary)
			m.BlockPair(1, primary)
		}, liveExec, true},
		{"monitor isolated (can reach nobody)", func() {
			m.BlockPair(MonitorNode, primary)
			m.BlockPair(MonitorNode, 1)
		}, liveExec, false},
		{"asymmetric: only primary→monitor cut", func() {
			m.Block(primary, MonitorNode)
		}, liveExec, false},
		{"primary stopped but monitor-blind: standbys carry the vote", func() {
			m.BlockPair(MonitorNode, primary)
		}, deadExec, true},
	}
	for _, tc := range cases {
		m.HealAll()
		tc.setup()
		if got := c.deposeQuorum(primary, tc.exec, feed, standby); got != tc.want {
			t.Errorf("%s: vote = %v, want %v", tc.name, got, tc.want)
		}
	}

	// No standbys: cohort is monitor + primary node; a reachable stopped
	// primary deposes (2/2), an unreachable one cannot (1/2).
	m.HealAll()
	if !c.deposeQuorum(primary, deadExec, feed, nil) {
		t.Error("reachable stopped primary with no standbys: vote should pass")
	}
	m.BlockPair(MonitorNode, primary)
	if c.deposeQuorum(primary, deadExec, feed, nil) {
		t.Error("unreachable primary with no standbys: vote should block")
	}
	m.HealAll()

	// With no Links configured the vote never blocks (legacy behavior).
	plain, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Stop()
	if !plain.deposeQuorum(primary, liveExec, feed, standby) {
		t.Error("link-less cluster: vote should always pass")
	}
}

// TestProbeStrikeAccounting drives the monitor's probe loop body directly
// (replication off, so no live monitor interferes and failover attempts
// no-op on the missing feed): a blocked link is a strike, never an
// immediate failover — even for a stopped executor — strikes accumulate to
// the threshold and reset on the first clean probe.
func TestProbeStrikeAccounting(t *testing.T) {
	m := faultinject.NewMatrix()
	cfg := testConfig()
	cfg.Links = m
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	opts := replication.Options{ProbeTimeout: 50 * time.Millisecond, ProbeStrikes: 3}.Normalized()
	strikes := make(map[int]int)
	stop := make(chan struct{})
	node0 := c.Nodes()[0]
	pid := node0.Partitions[0]

	c.probePrimaries(stop, strikes, opts)
	if len(strikes) != 0 {
		t.Fatalf("healthy cluster accumulated strikes: %v", strikes)
	}

	// Asymmetric block (node cannot reach the monitor) is still a failed
	// observation: strikes accumulate once per probe round.
	m.Block(node0.ID, MonitorNode)
	for want := 1; want < opts.ProbeStrikes; want++ {
		c.probePrimaries(stop, strikes, opts)
		if strikes[pid] != want {
			t.Fatalf("strikes[%d] = %d after %d blocked probes, want %d", pid, strikes[pid], want, want)
		}
	}
	// Threshold round: the strike count is consumed by the failover attempt
	// (a no-op here — no feed), not left to re-fire every round.
	c.probePrimaries(stop, strikes, opts)
	if _, ok := strikes[pid]; ok {
		t.Fatalf("strikes[%d] survived the threshold round: %v", pid, strikes)
	}

	// Flaky probe: one strike, then a clean round resets to zero.
	c.probePrimaries(stop, strikes, opts)
	if strikes[pid] != 1 {
		t.Fatalf("strikes[%d] = %d, want 1", pid, strikes[pid])
	}
	m.Heal(node0.ID, MonitorNode)
	c.probePrimaries(stop, strikes, opts)
	if _, ok := strikes[pid]; ok {
		t.Fatalf("clean probe did not reset strikes: %v", strikes)
	}

	// A stopped executor behind a blocked link takes the strike path — the
	// monitor cannot actually observe the stop, so no immediate failover.
	c.mu.RLock()
	exec := c.execs[pid]
	c.mu.RUnlock()
	exec.Stop()
	m.Block(MonitorNode, node0.ID)
	c.probePrimaries(stop, strikes, opts)
	if strikes[pid] != 1 {
		t.Fatalf("blocked stopped primary: strikes[%d] = %d, want 1 (no immediate path)", pid, strikes[pid])
	}
	// Healed: the stop is observable, the immediate path clears the count.
	m.Heal(MonitorNode, node0.ID)
	c.probePrimaries(stop, strikes, opts)
	if _, ok := strikes[pid]; ok {
		t.Fatalf("observable stop left strikes behind: %v", strikes)
	}
}
