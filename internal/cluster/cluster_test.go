package cluster

import (
	"fmt"
	"sync"
	"testing"

	"pstore/internal/engine"
)

func testRegistry() *engine.Registry {
	reg := engine.NewRegistry()
	reg.Register("Put", func(tx *engine.Txn) error {
		return tx.Put("T", tx.Key, map[string]string{"v": tx.Arg("v")})
	})
	reg.Register("Get", func(tx *engine.Txn) error {
		r, ok, err := tx.Get("T", tx.Key)
		if err != nil {
			return err
		}
		if !ok {
			return tx.Abort("not found")
		}
		tx.SetOut("v", r.Cols["v"])
		return nil
	})
	return reg
}

func testConfig() Config {
	return Config{
		InitialNodes:      2,
		PartitionsPerNode: 2,
		NBuckets:          64,
		Tables:            []string{"T"},
		Registry:          testRegistry(),
	}
}

func TestClusterBasicRouting(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": key}})
		if res.Err != nil {
			t.Fatalf("put %s: %v", key, res.Err)
		}
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		res := c.Call(&engine.Txn{Proc: "Get", Key: key})
		if res.Err != nil {
			t.Fatalf("get %s: %v", key, res.Err)
		}
		if res.Out["v"] != key {
			t.Errorf("get %s = %q", key, res.Out["v"])
		}
	}
	if n, err := c.TotalRows(); err != nil || n != 100 {
		t.Errorf("TotalRows = %d, %v", n, err)
	}
	if c.Latencies().Count() != 200 {
		t.Errorf("latencies recorded = %d, want 200", c.Latencies().Count())
	}
	if c.OfferedLoad().Total() != 200 {
		t.Errorf("offered = %d, want 200", c.OfferedLoad().Total())
	}
}

func TestClusterValidation(t *testing.T) {
	bad := testConfig()
	bad.InitialNodes = 0
	if _, err := New(bad); err == nil {
		t.Error("InitialNodes=0 should fail")
	}
	bad = testConfig()
	bad.PartitionsPerNode = 0
	if _, err := New(bad); err == nil {
		t.Error("PartitionsPerNode=0 should fail")
	}
	bad = testConfig()
	bad.NBuckets = 1
	if _, err := New(bad); err == nil {
		t.Error("tiny NBuckets should fail")
	}
	bad = testConfig()
	bad.Registry = nil
	if _, err := New(bad); err == nil {
		t.Error("nil registry should fail")
	}
}

func TestClusterBucketsDealtEvenly(t *testing.T) {
	c, err := New(testConfig()) // 4 partitions, 64 buckets
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	counts := c.BucketCounts()
	if len(counts) != 4 {
		t.Fatalf("partitions = %d", len(counts))
	}
	for pid, n := range counts {
		if n != 16 {
			t.Errorf("partition %d owns %d buckets, want 16", pid, n)
		}
	}
}

func TestClusterAddRemoveNode(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	node := c.AddNode()
	if c.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	if len(node.Partitions) != 2 {
		t.Errorf("new node partitions = %v", node.Partitions)
	}
	// New node owns nothing → removable.
	if err := c.RemoveNode(node.ID); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 2 {
		t.Errorf("NumNodes = %d after remove", c.NumNodes())
	}
	// Nodes owning buckets are not removable.
	first := c.Nodes()[0]
	if err := c.RemoveNode(first.ID); err == nil {
		t.Error("removing a node that owns buckets should fail")
	}
	if err := c.RemoveNode(999); err == nil {
		t.Error("removing unknown node should fail")
	}
}

func TestClusterCannotRemoveLastNode(t *testing.T) {
	cfg := testConfig()
	cfg.InitialNodes = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.RemoveNode(c.Nodes()[0].ID); err == nil {
		t.Error("removing the last node should fail")
	}
}

func TestClusterConcurrentCalls(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if res := c.Call(&engine.Txn{Proc: "Put", Key: key, Args: map[string]string{"v": "x"}}); res.Err != nil {
					t.Errorf("put: %v", res.Err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n, _ := c.TotalRows(); n != 800 {
		t.Errorf("TotalRows = %d, want 800", n)
	}
}

func TestClusterLoadRow(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.LoadRow("T", "bulk1", map[string]string{"v": "42"}); err != nil {
		t.Fatal(err)
	}
	res := c.Call(&engine.Txn{Proc: "Get", Key: "bulk1"})
	if res.Err != nil || res.Out["v"] != "42" {
		t.Errorf("get after LoadRow: %v %v", res.Out, res.Err)
	}
	// LoadRow must not count toward offered load or latencies.
	if c.OfferedLoad().Total() != 1 {
		t.Errorf("offered = %d, want 1 (only the Get)", c.OfferedLoad().Total())
	}
}

func TestClusterStopIdempotent(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Stop()
}
