package cluster

import (
	"testing"

	"pstore/internal/testutil"
)

// TestMain fails the suite if any test leaks a goroutine: cluster nodes
// spawn executors, committers, monitors, and replication tails that must
// all join on Stop/Crash.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
