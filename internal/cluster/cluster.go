// Package cluster manages a multi-node, shared-nothing P-Store deployment:
// node lifecycle (scale-out adds nodes, scale-in retires them), the
// bucket→partition routing table that the migrator rewrites during live
// reconfigurations, and cluster-wide load and latency measurement.
package cluster

//pstore:deterministic — ContentChecksum and snapshot manifests are
// compared across chaos-seed replays; iteration order must not leak into
// them.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/durability"
	"pstore/internal/engine"
	"pstore/internal/metrics"
	"pstore/internal/replication"
	"pstore/internal/storage"
)

// Config describes a cluster deployment.
type Config struct {
	// InitialNodes is the number of nodes at startup.
	InitialNodes int
	// PartitionsPerNode is P: each node hosts this many serial executors
	// (the paper's experiments use 6).
	PartitionsPerNode int
	// NBuckets is the global hash-bucket count, the granularity of data
	// movement. It should be much larger than the maximum partition count.
	NBuckets int
	// Tables are created on every partition.
	Tables []string
	// Registry holds the stored procedures.
	Registry *engine.Registry
	// Engine configures every executor.
	Engine engine.Config
	// RetryInterval is the backoff between routing retries when a key's
	// bucket is in flight during a migration. Defaults to 200µs.
	RetryInterval time.Duration
	// RetryBudget bounds how long a transaction keeps retrying before
	// giving up. Defaults to 10s.
	RetryBudget time.Duration
	// RetryAttempts caps how many times a transaction is requeued while its
	// bucket is in flight, independent of RetryBudget, so the in-between
	// window of a bucket move can never spin unboundedly even with a tiny
	// RetryInterval. Defaults to RetryBudget / RetryInterval.
	RetryAttempts int
	// LatencyWindow is the aggregation window of the cluster's latency
	// percentiles (the paper windows by second; compressed-time
	// experiments use shorter windows). Defaults to 1s.
	LatencyWindow time.Duration
	// DataDir, when non-empty, enables durability: every partition gets a
	// command log plus snapshots under DataDir, committed transactions are
	// fsynced (group commit) before being acked, and New recovers existing
	// state found there instead of starting empty.
	DataDir string
	// Durability tunes the per-partition logs when DataDir is set.
	Durability durability.Options
	// ReplicationFactor is k: each partition's command log is shipped to k
	// standby replicas on other nodes, writes are acked only after every
	// live replica acks them, and a dead primary fails over to its most
	// caught-up replica. 0 disables replication.
	ReplicationFactor int
	// Replication tunes log shipping when ReplicationFactor > 0.
	Replication replication.Options
	// ReplicationConnWrap, when set, wraps every log-shipping connection
	// (both hub-accepted and tail-dialed) — the fault injection hook.
	ReplicationConnWrap func(net.Conn) net.Conn
	// Links, when set, is the network-partition matrix the cluster consults
	// for its in-process control paths: the failover monitor's probes and
	// its quorum vote honor blocked monitor↔node links instead of cheating
	// through shared memory.
	Links Links
	// LinkConnWrap, when set, wraps each standby tail connection with
	// directed link-matrix awareness: (conn, local endpoint, remote endpoint
	// resolver). The resolver is consulted per I/O so a tail tracks the
	// primary across failovers.
	LinkConnWrap func(conn net.Conn, local int, remote func() int) net.Conn
}

// Links is the cluster's view of a fault-injection partition matrix.
// Blocked(from, to) reports whether directed traffic from one endpoint to
// another is currently black-holed; the matrix is asymmetric by design.
type Links interface {
	Blocked(from, to int) bool
}

// MonitorNode is the link-matrix endpoint of the failover monitor, distinct
// from every node ID so chaos schedules can isolate the monitor's view of a
// node while clients still reach it (the classic split-brain inducement).
const MonitorNode = -1

func (c Config) retryInterval() time.Duration {
	if c.RetryInterval <= 0 {
		return 200 * time.Microsecond
	}
	return c.RetryInterval
}

func (c Config) retryBudget() time.Duration {
	if c.RetryBudget <= 0 {
		return 10 * time.Second
	}
	return c.RetryBudget
}

func (c Config) retryAttempts() int {
	if c.RetryAttempts > 0 {
		return c.RetryAttempts
	}
	n := int(c.retryBudget() / c.retryInterval())
	if n < 1 {
		n = 1
	}
	return n
}

// Node is one machine in the cluster, hosting PartitionsPerNode executors.
type Node struct {
	ID         int
	Partitions []int
}

// Cluster is a live deployment. All methods are safe for concurrent use.
type Cluster struct {
	cfg Config

	// route is the hot-path routing snapshot: an immutable bucket→partition
	// table plus partition→executor map, swapped atomically whenever the
	// topology or ownership changes. Transaction routing reads it with one
	// atomic load — no lock — so reconfigurations never stall the request
	// path, and the request path never stalls reconfigurations.
	route atomic.Pointer[routing]

	mu        sync.RWMutex
	nodes     []*Node                  // sorted by ID
	execs     map[int]*engine.Executor // partition → executor (master copy)
	durs      map[int]*durability.Manager
	homes     map[int]string // partition → durable log dir (failover can move it off the default)
	owner     []int          // bucket → partition (master copy)
	nextNode  int
	nextPart  int
	stopped   bool
	recovered bool

	snapStop chan struct{} // stops the periodic snapshot loop
	snapDone chan struct{}

	// Replication state (nil maps when ReplicationFactor == 0); the
	// methods live in replication.go. feeds/replicas/epochs are guarded by
	// c.mu; failoverMu serializes failovers so two probes of the same dead
	// primary cannot promote twice.
	hub        *replication.Hub
	feeds      map[int]*replication.Feed
	replicas   map[int][]*replicaHandle
	epochs     map[int]uint64
	deadNodes  map[int]bool
	rrSeq      atomic.Uint64 // replica read round-robin cursor
	monStop    chan struct{}
	monDone    chan struct{}
	failoverMu sync.Mutex

	// stale holds deposed-but-unreachable primaries: the quorum vote deposed
	// them while a partition hid them from the monitor, so their executors
	// could not be stopped in place. The monitor sweeps them once the links
	// heal; hub-side epoch fencing keeps them harmless in between.
	stale []*stalePrimary
	// respawnPaused suspends standby respawning — a test hook for staging
	// double faults deterministically.
	respawnPaused bool

	latencies  *metrics.ShardedRecorder
	offered    *metrics.Counter
	allocLog   *metrics.AllocationTracker
	events     *metrics.Events
	moveStalls *metrics.DurationHist

	// migrating tracks buckets currently in a pre-copy move: still owned
	// and served by their source partition, but with write capture active.
	// Routing (Call) never consults it — pre-copy's whole point is that the
	// request path is untouched until the final flip — it exists for
	// observability and for planners that want to avoid re-scheduling a
	// bucket already in flight.
	migratingMu sync.Mutex
	migrating   map[int]bool

	reconfigMu sync.Mutex
	reconfig   bool
}

// New starts a cluster with the configured initial nodes; buckets are dealt
// round-robin across the initial partitions.
func New(cfg Config) (*Cluster, error) {
	if cfg.InitialNodes < 1 {
		return nil, fmt.Errorf("cluster: InitialNodes must be ≥ 1, got %d", cfg.InitialNodes)
	}
	if cfg.PartitionsPerNode < 1 {
		return nil, fmt.Errorf("cluster: PartitionsPerNode must be ≥ 1, got %d", cfg.PartitionsPerNode)
	}
	if cfg.NBuckets < cfg.InitialNodes*cfg.PartitionsPerNode {
		return nil, fmt.Errorf("cluster: NBuckets %d below initial partition count", cfg.NBuckets)
	}
	if cfg.Registry == nil {
		return nil, errors.New("cluster: Registry is required")
	}
	window := cfg.LatencyWindow
	if window <= 0 {
		window = time.Second
	}
	c := &Cluster{
		cfg:        cfg,
		execs:      make(map[int]*engine.Executor),
		durs:       make(map[int]*durability.Manager),
		homes:      make(map[int]string),
		owner:      make([]int, cfg.NBuckets),
		latencies:  metrics.NewShardedRecorder(window),
		offered:    metrics.NewCounter(time.Second),
		allocLog:   metrics.NewAllocationTracker(time.Now(), cfg.InitialNodes),
		events:     metrics.NewEvents(),
		moveStalls: metrics.NewDurationHist(),
		migrating:  make(map[int]bool),
	}
	if cfg.ReplicationFactor > 0 {
		if err := c.initReplication(); err != nil {
			return nil, err
		}
	}
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("cluster: data dir: %w", err)
		}
		if _, err := os.Stat(c.manifestPath()); err == nil {
			if err := c.recover(); err != nil {
				return nil, err
			}
			c.startSnapshotLoop()
			if c.replicationEnabled() {
				c.startReplicationStandbys()
			}
			return c, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	nParts := cfg.InitialNodes * cfg.PartitionsPerNode
	ownedBy := make([][]int, nParts)
	for b := 0; b < cfg.NBuckets; b++ {
		p := b % nParts
		ownedBy[p] = append(ownedBy[p], b)
		c.owner[b] = p
	}
	for n := 0; n < cfg.InitialNodes; n++ {
		node := &Node{ID: c.nextNode}
		c.nextNode++
		for i := 0; i < cfg.PartitionsPerNode; i++ {
			pid := c.nextPart
			c.nextPart++
			part := storage.NewPartition(pid, cfg.NBuckets, ownedBy[pid])
			for _, t := range cfg.Tables {
				part.CreateTable(t)
			}
			if err := c.startPartition(pid, part, true); err != nil {
				return nil, err
			}
			node.Partitions = append(node.Partitions, pid)
		}
		c.nodes = append(c.nodes, node)
	}
	if cfg.DataDir != "" {
		if err := c.writeManifestLocked(); err != nil {
			return nil, err
		}
	}
	c.publishRoutingLocked()
	c.startSnapshotLoop()
	if c.replicationEnabled() {
		c.startReplicationStandbys()
	}
	return c, nil
}

// routing is one immutable snapshot of the request-routing state.
type routing struct {
	owner []int                    // bucket → partition
	execs map[int]*engine.Executor // partition → executor
	feeds map[int]*replication.Feed
}

// publishRoutingLocked rebuilds and swaps the routing snapshot from the
// master copies. Caller holds c.mu (or owns c exclusively during New), so
// writers are serialized; readers are never blocked.
func (c *Cluster) publishRoutingLocked() {
	rt := &routing{
		owner: append([]int(nil), c.owner...),
		execs: make(map[int]*engine.Executor, len(c.execs)),
	}
	for pid, e := range c.execs {
		rt.execs[pid] = e
	}
	if len(c.feeds) > 0 {
		rt.feeds = make(map[int]*replication.Feed, len(c.feeds))
		for pid, f := range c.feeds {
			rt.feeds[pid] = f
		}
	}
	c.route.Store(rt)
}

// linkBlocked consults the configured partition matrix; with no matrix, no
// link is ever blocked.
func (c *Cluster) linkBlocked(from, to int) bool {
	return c.cfg.Links != nil && c.cfg.Links.Blocked(from, to)
}

// startPartition opens the partition's durability manager (when enabled),
// optionally writes an initial snapshot so its bucket ownership is durable
// from the first moment, and launches the executor. Caller holds c.mu or
// owns c exclusively.
func (c *Cluster) startPartition(pid int, part *storage.Partition, initialSnapshot bool) error {
	ecfg := c.cfg.Engine
	var mgr *durability.Manager
	if c.cfg.DataDir != "" {
		m, err := durability.Open(c.partitionDir(pid), pid, c.cfg.Durability)
		if err != nil {
			return fmt.Errorf("cluster: partition %d durability: %w", pid, err)
		}
		if initialSnapshot {
			if err := m.Snapshot(part); err != nil {
				m.Close()
				return fmt.Errorf("cluster: partition %d initial snapshot: %w", pid, err)
			}
		}
		mgr = m
		c.durs[pid] = mgr
		c.homes[pid] = c.partitionDir(pid)
		ecfg.Log = mgr
	}
	if c.replicationEnabled() {
		ecfg.Log = c.installFeedLocked(pid, mgr)
	}
	c.execs[pid] = engine.NewExecutor(part, c.cfg.Registry, ecfg)
	return nil
}

func (c *Cluster) manifestPath() string { return filepath.Join(c.cfg.DataDir, "cluster.json") }

func (c *Cluster) partitionDir(pid int) string {
	return filepath.Join(c.cfg.DataDir, fmt.Sprintf("partition-%05d", pid))
}

// replicaDir is where a durable standby of the partition keeps its own
// command log when hosted on the given node. Promotion turns this directory
// into the partition's durable home.
func (c *Cluster) replicaDir(pid, nid int) string {
	return filepath.Join(c.cfg.DataDir, fmt.Sprintf("replica-p%05d-n%03d", pid, nid))
}

// manifest is the durable cluster layout: which nodes exist and which
// partitions they host. Bucket ownership is NOT here — each partition's own
// snapshot+log is the authority, so the manifest never races with
// migrations.
type manifest struct {
	NBuckets          int            `json:"nbuckets"`
	PartitionsPerNode int            `json:"partitions_per_node"`
	NextNode          int            `json:"next_node"`
	NextPart          int            `json:"next_part"`
	Nodes             []manifestNode `json:"nodes"`
	// Homes records, per partition, the durable log directory — after a
	// failover promotes a durable standby, the partition's authoritative log
	// is the standby's, not the default partition-NNNNN directory. Recovery
	// must replay the recorded home or it resurrects deposed history.
	Homes map[string]string `json:"homes,omitempty"`
	// Epochs records each partition's replication epoch. Written before the
	// promoted primary is routable, this is the durable fencing record: a
	// recovering cluster resumes above every epoch that ever acked a write.
	Epochs map[string]uint64 `json:"epochs,omitempty"`
}

type manifestNode struct {
	ID         int   `json:"id"`
	Partitions []int `json:"partitions"`
}

// writeManifestLocked persists the node/partition layout (atomic rename).
// Caller holds c.mu or owns c exclusively.
func (c *Cluster) writeManifestLocked() error {
	m := manifest{
		NBuckets:          c.cfg.NBuckets,
		PartitionsPerNode: c.cfg.PartitionsPerNode,
		NextNode:          c.nextNode,
		NextPart:          c.nextPart,
	}
	for _, n := range c.nodes {
		m.Nodes = append(m.Nodes, manifestNode{ID: n.ID, Partitions: append([]int(nil), n.Partitions...)})
	}
	if len(c.homes) > 0 {
		m.Homes = make(map[string]string, len(c.homes))
		for pid, dir := range c.homes {
			m.Homes[strconv.Itoa(pid)] = dir
		}
	}
	if len(c.epochs) > 0 {
		m.Epochs = make(map[string]uint64, len(c.epochs))
		for pid, e := range c.epochs {
			m.Epochs[strconv.Itoa(pid)] = e
		}
	}
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	tmp := c.manifestPath() + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.manifestPath())
}

// recover rebuilds the cluster from DataDir: the manifest gives the
// node/partition layout, every partition replays its snapshot + log tail,
// and the routing table is rebuilt from the recovered bucket ownership.
func (c *Cluster) recover() error {
	raw, err := os.ReadFile(c.manifestPath())
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("cluster: manifest: %w", err)
	}
	if m.NBuckets != c.cfg.NBuckets {
		return fmt.Errorf("cluster: data dir has %d buckets, config wants %d", m.NBuckets, c.cfg.NBuckets)
	}
	if m.PartitionsPerNode != c.cfg.PartitionsPerNode {
		return fmt.Errorf("cluster: data dir has %d partitions/node, config wants %d",
			m.PartitionsPerNode, c.cfg.PartitionsPerNode)
	}
	c.nextNode = m.NextNode
	c.nextPart = m.NextPart
	c.recovered = true
	for k, e := range m.Epochs {
		pid, perr := strconv.Atoi(k)
		if perr != nil {
			return fmt.Errorf("cluster: manifest epoch key %q: %w", k, perr)
		}
		if c.epochs != nil {
			c.epochs[pid] = e
		}
	}
	homes := make(map[int]string, len(m.Homes))
	for k, dir := range m.Homes {
		pid, perr := strconv.Atoi(k)
		if perr != nil {
			return fmt.Errorf("cluster: manifest home key %q: %w", k, perr)
		}
		homes[pid] = dir
	}

	type recovered struct {
		part  *storage.Partition
		mgr   *durability.Manager
		stats durability.ReplayStats
	}
	parts := make(map[int]*recovered)
	var pids []int
	for _, mn := range m.Nodes {
		node := &Node{ID: mn.ID, Partitions: append([]int(nil), mn.Partitions...)}
		c.nodes = append(c.nodes, node)
		for _, pid := range mn.Partitions {
			part := storage.NewPartition(pid, c.cfg.NBuckets, nil)
			for _, t := range c.cfg.Tables {
				part.CreateTable(t)
			}
			dir, ok := homes[pid]
			if !ok {
				dir = c.partitionDir(pid)
			}
			c.homes[pid] = dir
			mgr, err := durability.Open(dir, pid, c.cfg.Durability)
			if err != nil {
				return fmt.Errorf("cluster: partition %d durability: %w", pid, err)
			}
			stats, err := mgr.Recover(part, c.cfg.Registry)
			if err != nil {
				mgr.Close()
				return fmt.Errorf("cluster: recovering partition %d: %w", pid, err)
			}
			parts[pid] = &recovered{part: part, mgr: mgr, stats: stats}
			pids = append(pids, pid)
		}
	}
	sort.Ints(pids)

	// Rebuild routing from recovered ownership. A crash between a bucket's
	// durable arrival at the receiver and the sender's durable handoff
	// record leaves both partitions claiming it; the receiver (whose claim
	// comes from a bucket-in record) wins, since post-handoff transactions
	// were logged there. A bucket nobody claims is re-adopted empty,
	// round-robin.
	claim := make([]int, c.cfg.NBuckets)
	for i := range claim {
		claim[i] = -1
	}
	dirty := make(map[int]bool) // partitions whose state changed during resolution
	for _, pid := range pids {
		r := parts[pid]
		for _, b := range r.part.OwnedBuckets() {
			prev := claim[b]
			if prev < 0 {
				claim[b] = pid
				continue
			}
			// Conflict: prefer the handoff receiver.
			loser, winner := pid, prev
			if r.stats.FromHandoff[b] && !parts[prev].stats.FromHandoff[b] {
				loser, winner = prev, pid
			}
			claim[b] = winner
			if err := parts[loser].part.DropBucket(b); err != nil {
				return fmt.Errorf("cluster: resolving bucket %d ownership: %w", b, err)
			}
			dirty[loser] = true
		}
	}
	for b, pid := range claim {
		if pid >= 0 {
			c.owner[b] = pid
			continue
		}
		adopt := pids[b%len(pids)]
		if err := parts[adopt].part.ApplyBucket(&storage.BucketData{Bucket: b, Tables: map[string][]storage.Row{}}); err != nil {
			return fmt.Errorf("cluster: re-adopting lost bucket %d: %w", b, err)
		}
		c.owner[b] = adopt
		dirty[adopt] = true
	}
	for pid := range dirty {
		if err := parts[pid].mgr.Snapshot(parts[pid].part); err != nil {
			return fmt.Errorf("cluster: snapshotting resolved partition %d: %w", pid, err)
		}
	}
	for _, pid := range pids {
		r := parts[pid]
		ecfg := c.cfg.Engine
		ecfg.Log = r.mgr
		c.durs[pid] = r.mgr
		if c.replicationEnabled() {
			ecfg.Log = c.installFeedLocked(pid, r.mgr)
		}
		c.execs[pid] = engine.NewExecutor(r.part, c.cfg.Registry, ecfg)
	}
	c.publishRoutingLocked()
	c.allocLog.Set(time.Now(), len(c.nodes))
	return nil
}

// Recovered reports whether New restored existing state from DataDir
// (callers use it to skip re-preloading data).
func (c *Cluster) Recovered() bool { return c.recovered }

// DurabilityOf returns the partition's durability manager, or nil when
// durability is disabled (or the partition is gone).
func (c *Cluster) DurabilityOf(partition int) *durability.Manager {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.durs[partition]
}

// startSnapshotLoop launches the periodic snapshot/truncate loop when
// configured.
func (c *Cluster) startSnapshotLoop() {
	if c.cfg.DataDir == "" || c.cfg.Durability.SnapshotInterval <= 0 {
		return
	}
	// Capture the channels: stopSnapshotLoop nils the fields, and a
	// receive on a re-read nil field would park this goroutine forever.
	stop := make(chan struct{})
	done := make(chan struct{})
	c.snapStop, c.snapDone = stop, done
	go func() {
		defer close(done)
		ticker := time.NewTicker(c.cfg.Durability.SnapshotInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				c.SnapshotAll()
			}
		}
	}()
}

// SnapshotAll snapshots every partition (through its executor, so each
// snapshot is consistent) and truncates its log. Partitions that stop
// mid-iteration are skipped.
func (c *Cluster) SnapshotAll() error {
	c.mu.RLock()
	type pair struct {
		exec *engine.Executor
		mgr  *durability.Manager
	}
	// Snapshot in partition order: the manifest written per snapshot round
	// is compared across runs, so the iteration order must be stable.
	pids := make([]int, 0, len(c.durs))
	for pid := range c.durs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var pairs []pair
	for _, pid := range pids {
		if e, ok := c.execs[pid]; ok {
			pairs = append(pairs, pair{e, c.durs[pid]})
		}
	}
	c.mu.RUnlock()
	var firstErr error
	for _, pr := range pairs {
		mgr := pr.mgr
		err := pr.exec.Do(func(p *storage.Partition) (int, error) {
			return 0, mgr.Snapshot(p)
		})
		if err != nil && !errors.Is(err, engine.ErrStopped) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stop shuts down the cluster: the snapshot and failover loops first, then
// (with durability on) a final snapshot of every partition so restart needs
// no replay, then every executor, then the logs are flushed and closed and
// the replication machinery (feeds, standbys, hub) is torn down.
func (c *Cluster) Stop() {
	c.stopSnapshotLoop()
	c.stopMonitor()
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	if c.cfg.DataDir != "" {
		c.SnapshotAll()
	}
	c.mu.Lock()
	for _, e := range c.execs {
		e.Stop() //pstore:ignore lockdiscipline — executor goroutines never take c.mu, so waiting out their drain under the lock cannot deadlock
	}
	for _, m := range c.durs {
		m.Close()
	}
	for _, f := range c.feeds {
		f.Close()
	}
	var handles []*replicaHandle
	for _, hs := range c.replicas { //pstore:ignore determinism — shutdown kill-list; every handle is stopped, order across partitions is unobservable
		handles = append(handles, hs...)
	}
	stale := c.stale
	c.stale = nil
	hub := c.hub
	c.mu.Unlock()
	for _, h := range handles {
		h.rep.Kill()
		h.tail.Stop()
	}
	for _, s := range stale {
		s.teardown()
	}
	if hub != nil {
		hub.Close()
	}
}

func (c *Cluster) stopSnapshotLoop() {
	c.mu.Lock()
	stop, done := c.snapStop, c.snapDone
	c.snapStop, c.snapDone = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Crash is a test hook simulating the whole process dying: executors stop
// without final snapshots, and each log abandons its un-fsynced buffer.
// Acknowledged transactions survive (group commit fsynced them before the
// ack); in-flight ones may not — exactly a real crash's contract.
func (c *Cluster) Crash() {
	c.stopSnapshotLoop()
	c.stopMonitor()
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	for _, e := range c.execs {
		e.Stop() //pstore:ignore lockdiscipline — executor goroutines never take c.mu, so waiting out their drain under the lock cannot deadlock
	}
	for _, f := range c.feeds {
		f.Close()
	}
	for _, m := range c.durs {
		m.Crash()
	}
	var handles []*replicaHandle
	for _, hs := range c.replicas { //pstore:ignore determinism — shutdown kill-list; every handle is stopped, order across partitions is unobservable
		handles = append(handles, hs...)
	}
	stale := c.stale
	c.stale = nil
	hub := c.hub
	c.mu.Unlock()
	for _, h := range handles {
		h.rep.Kill()
		h.tail.Stop()
	}
	for _, s := range stale {
		s.teardown()
	}
	if hub != nil {
		hub.Close()
	}
}

// NumNodes returns the current node count.
func (c *Cluster) NumNodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// Nodes returns a snapshot of the current nodes, ordered by ID.
func (c *Cluster) Nodes() []Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Node, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = Node{ID: n.ID, Partitions: append([]int(nil), n.Partitions...)}
	}
	return out
}

// AddNode provisions a new empty node (no buckets) and returns it. Data
// arrives via migration.
func (c *Cluster) AddNode() Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	node := &Node{ID: c.nextNode}
	c.nextNode++
	for i := 0; i < c.cfg.PartitionsPerNode; i++ {
		pid := c.nextPart
		c.nextPart++
		part := storage.NewPartition(pid, c.cfg.NBuckets, nil)
		for _, t := range c.cfg.Tables {
			part.CreateTable(t)
		}
		// A scale-out node must be fully durable (empty snapshot + open
		// log) before any bucket migrates onto it; failures here are
		// programming or I/O errors surfaced loudly.
		if err := c.startPartition(pid, part, true); err != nil {
			panic(fmt.Sprintf("cluster: AddNode: %v", err))
		}
		node.Partitions = append(node.Partitions, pid)
	}
	c.nodes = append(c.nodes, node)
	if c.cfg.DataDir != "" {
		if err := c.writeManifestLocked(); err != nil {
			panic(fmt.Sprintf("cluster: AddNode manifest: %v", err))
		}
	}
	c.publishRoutingLocked()
	c.allocLog.Set(time.Now(), len(c.nodes))
	return Node{ID: node.ID, Partitions: append([]int(nil), node.Partitions...)}
}

// RemoveNode retires a node whose partitions no longer own any buckets.
// Standby replicas it hosted stop serving; the failover monitor respawns
// them elsewhere.
func (c *Cluster) RemoveNode(id int) error {
	c.mu.Lock()
	idx := -1
	for i, n := range c.nodes {
		if n.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no node %d", id)
	}
	if len(c.nodes) == 1 {
		c.mu.Unlock()
		return errors.New("cluster: cannot remove the last node")
	}
	node := c.nodes[idx]
	for _, pid := range node.Partitions {
		for _, owner := range c.owner {
			if owner == pid {
				c.mu.Unlock()
				return fmt.Errorf("cluster: node %d partition %d still owns buckets", id, pid)
			}
		}
	}
	var doomedFeeds []*replication.Feed
	var doomedReps []*replicaHandle
	for _, pid := range node.Partitions {
		c.execs[pid].Stop() //pstore:ignore lockdiscipline — executor goroutines never take c.mu, so waiting out their drain under the lock cannot deadlock
		delete(c.execs, pid)
		if f, ok := c.feeds[pid]; ok {
			doomedFeeds = append(doomedFeeds, f)
			delete(c.feeds, pid)
			delete(c.epochs, pid)
			c.hub.Deregister(pid)
			doomedReps = append(doomedReps, c.replicas[pid]...)
			delete(c.replicas, pid)
		}
		if mgr, ok := c.durs[pid]; ok {
			// The partitions own nothing: their durable state is obsolete.
			mgr.Close()
			delete(c.durs, pid)
			dir := c.homes[pid]
			if dir == "" {
				dir = c.partitionDir(pid)
			}
			delete(c.homes, pid)
			if err := os.RemoveAll(dir); err != nil {
				c.mu.Unlock()
				return fmt.Errorf("cluster: removing partition %d data: %w", pid, err)
			}
		}
	}
	// Standbys of other partitions hosted here lose their home too.
	for pid, hs := range c.replicas { //pstore:ignore determinism — eviction sweep; all doomed standbys are killed, order across partitions is unobservable
		keep := hs[:0]
		for _, h := range hs {
			if h.node == id {
				doomedReps = append(doomedReps, h)
			} else {
				keep = append(keep, h)
			}
		}
		c.replicas[pid] = keep
	}
	delete(c.deadNodes, id)
	c.nodes = append(c.nodes[:idx], c.nodes[idx+1:]...)
	if c.cfg.DataDir != "" {
		if err := c.writeManifestLocked(); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	c.publishRoutingLocked()
	c.allocLog.Set(time.Now(), len(c.nodes))
	c.mu.Unlock()
	for _, f := range doomedFeeds {
		f.Close()
	}
	for _, h := range doomedReps {
		h.rep.Kill()
		h.tail.Stop()
	}
	return nil
}

// BeginReconfiguration takes the cluster's reconfiguration lock. Exactly
// one reconfiguration may run at a time: concurrent bucket moves would race
// on ownership. It returns false if another reconfiguration is in progress.
func (c *Cluster) BeginReconfiguration() bool {
	c.reconfigMu.Lock()
	defer c.reconfigMu.Unlock()
	if c.reconfig {
		return false
	}
	c.reconfig = true
	return true
}

// EndReconfiguration releases the reconfiguration lock.
func (c *Cluster) EndReconfiguration() {
	c.reconfigMu.Lock()
	c.reconfig = false
	c.reconfigMu.Unlock()
}

// Reconfiguring reports whether a reconfiguration is in progress.
func (c *Cluster) Reconfiguring() bool {
	c.reconfigMu.Lock()
	defer c.reconfigMu.Unlock()
	return c.reconfig
}

// OwnerOf returns the partition currently owning the bucket.
func (c *Cluster) OwnerOf(bucket int) int {
	return c.route.Load().owner[bucket]
}

// SetOwner points the routing table for a bucket at a partition. The
// migrator calls this when it starts moving the bucket, so retries land on
// the destination. Readers see the swap atomically via the routing
// snapshot; they are never blocked.
func (c *Cluster) SetOwner(bucket, partition int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.owner[bucket] = partition
	c.publishRoutingLocked()
}

// SetMigrating marks or unmarks a bucket as being pre-copied: still owned
// and served at its source, with write capture active. The migrator brackets
// each phased move with it; the request path never reads this state.
func (c *Cluster) SetMigrating(bucket int, on bool) {
	c.migratingMu.Lock()
	if on {
		c.migrating[bucket] = true
	} else {
		delete(c.migrating, bucket)
	}
	c.migratingMu.Unlock()
}

// IsMigrating reports whether the bucket is currently in a pre-copy move.
func (c *Cluster) IsMigrating(bucket int) bool {
	c.migratingMu.Lock()
	defer c.migratingMu.Unlock()
	return c.migrating[bucket]
}

// MigratingCount returns the number of buckets currently in pre-copy moves.
func (c *Cluster) MigratingCount() int {
	c.migratingMu.Lock()
	defer c.migratingMu.Unlock()
	return len(c.migrating)
}

// MoveStalls is the histogram of per-bucket-move foreground stall windows
// (source detach → durable destination commit) — the paper's effective-
// capacity cost of a reconfiguration, measured directly.
func (c *Cluster) MoveStalls() *metrics.DurationHist { return c.moveStalls }

// ExecutorOf returns the executor hosting the partition.
func (c *Cluster) ExecutorOf(partition int) (*engine.Executor, bool) {
	e, ok := c.route.Load().execs[partition]
	return e, ok
}

// RouteKey returns the partition a key currently routes to.
func (c *Cluster) RouteKey(key string) int {
	return c.OwnerOf(storage.BucketOf(key, c.cfg.NBuckets))
}

// NBuckets returns the global bucket count.
func (c *Cluster) NBuckets() int { return c.cfg.NBuckets }

// PartitionsPerNode returns P.
func (c *Cluster) PartitionsPerNode() int { return c.cfg.PartitionsPerNode }

// Call routes a transaction by its key and executes it, retrying while the
// key's bucket is in flight between partitions. The retry loop is bounded
// both in time (RetryBudget) and in attempts (RetryAttempts), and every
// requeue is counted in Events as a migration retry — a transaction can
// observe the in-between window of a bucket move, but never spin in it
// unboundedly or silently. Overload fast-fails (engine.ErrOverloaded) are
// never retried here: shedding exists to cut queueing, so the client gets
// the typed error (and a retry-after hint over the wire) immediately.
// End-to-end latency (including retries and queueing) is recorded in
// Latencies.
func (c *Cluster) Call(txn *engine.Txn) engine.Result {
	start := time.Now()
	c.offered.Add(start, 1)
	return c.callSync(txn, start)
}

// callSync is Call's bounded retry loop, shared with CallAsync's fallback
// path (which has already counted the offered load and must keep the
// original start time so the retry deadline and recorded latency span the
// whole call).
func (c *Cluster) callSync(txn *engine.Txn, start time.Time) engine.Result {
	deadline := start.Add(c.cfg.retryBudget())
	bucket := storage.BucketOf(txn.Key, c.cfg.NBuckets)
	var res engine.Result
	for attempt := 0; ; attempt++ {
		// One atomic snapshot load covers both the ownership lookup and
		// the executor lookup — the whole route is lock-free.
		rt := c.route.Load()
		pid := rt.owner[bucket]
		exec, ok := rt.execs[pid]
		if !ok {
			res = engine.Result{Err: fmt.Errorf("cluster: no executor for partition %d", pid)}
		} else if gerr := c.quorumGate(rt, pid); gerr != nil {
			res = engine.Result{Err: gerr, Partition: pid}
		} else {
			res = exec.Call(txn)
		}
		if errors.Is(res.Err, engine.ErrOverloaded) {
			c.events.Add(metrics.EventShed, 1)
			break
		}
		if !c.retriable(res.Err, ok) || attempt+1 >= c.cfg.retryAttempts() || time.Now().After(deadline) {
			break
		}
		c.events.Add(metrics.EventMigrationRetries, 1)
		time.Sleep(c.cfg.retryInterval())
	}
	res.Latency = time.Since(start)
	c.latencies.Record(time.Now(), res.Latency)
	return res
}

// quorumGate sheds a transaction before execution when the partition's
// primary cannot currently acknowledge writes: it has lost its subscriber
// quorum (self-fencing) or holds a fenced/closed feed (stale routing
// mid-failover). Shedding pre-execution is what keeps the error safely
// retryable — a write refused only after running would already have mutated
// the primary, and a client retry would double-apply it. Reads routed via
// CallReadOnly are never gated: a quorum-degraded primary still serves them.
func (c *Cluster) quorumGate(rt *routing, pid int) error {
	f := rt.feeds[pid]
	if f == nil {
		return nil
	}
	err := f.Available()
	if err != nil && errors.Is(err, replication.ErrQuorumLost) {
		c.events.Add(metrics.EventReplQuorumLostWrites, 1)
	}
	return err
}

// retriable reports whether err means the transaction never ran (bucket in
// flight, executor stopped or fenced mid-route, primary below its write
// quorum, replication ack window full) and may safely be requeued. routed
// is false when the routing table had no executor for the owner.
func (c *Cluster) retriable(err error, routed bool) bool {
	return storage.IsNotOwned(err) ||
		errors.Is(err, engine.ErrStopped) ||
		errors.Is(err, replication.ErrFenced) ||
		errors.Is(err, replication.ErrClosed) ||
		errors.Is(err, replication.ErrQuorumLost) ||
		errors.Is(err, replication.ErrWindowFull) ||
		(err != nil && !routed)
}

// asyncCall carries one CallAsync invocation's bookkeeping through the
// executor's completion path. Pooled so the steady-state async call path
// allocates nothing.
type asyncCall struct {
	c     *Cluster
	txn   *engine.Txn
	comp  engine.Completion
	start time.Time
}

var asyncCallPool = sync.Pool{New: func() any { return new(asyncCall) }}

// Complete runs on the executor (or group-commit) goroutine: it applies the
// cluster-level accounting that Call does inline — shed events, latency
// recording — and hands the result to the caller's completion. The rare
// retriable outcome (the bucket moved or the executor died between routing
// and execution; the transaction never ran) falls back to the synchronous
// retry loop on a fresh goroutine, keeping the executor non-blocked.
func (a *asyncCall) Complete(res engine.Result) {
	c, txn, comp, start := a.c, a.txn, a.comp, a.start
	*a = asyncCall{}
	asyncCallPool.Put(a)
	if errors.Is(res.Err, engine.ErrOverloaded) {
		c.events.Add(metrics.EventShed, 1)
	} else if c.retriable(res.Err, true) {
		go func() {
			c.events.Add(metrics.EventMigrationRetries, 1)
			comp.Complete(c.callSync(txn, start))
		}()
		return
	}
	res.Latency = time.Since(start)
	c.latencies.Record(time.Now(), res.Latency)
	comp.Complete(res)
}

// CallAsync routes and executes a transaction like Call, but delivers the
// result through comp instead of blocking the caller: the reply is produced
// directly on the executor's completion path, so a server connection can
// dispatch a call and return to its read loop without parking a goroutine
// per in-flight transaction. comp.Complete must be non-blocking (it runs on
// the executor or group-commit goroutine) and may be invoked synchronously
// on the caller's goroutine when admission control sheds the call.
func (c *Cluster) CallAsync(txn *engine.Txn, comp engine.Completion) {
	start := time.Now()
	c.offered.Add(start, 1)
	rt := c.route.Load()
	bucket := storage.BucketOf(txn.Key, c.cfg.NBuckets)
	pid := rt.owner[bucket]
	exec, ok := rt.execs[pid]
	if !ok {
		// No executor for the owner (node mid-removal): take the slow path,
		// which retries against fresh routing tables.
		go func() { comp.Complete(c.callSync(txn, start)) }()
		return
	}
	if c.quorumGate(rt, pid) != nil {
		// Primary below its write quorum: the synchronous loop retries until
		// the monitor restores quorum or the budget runs out.
		go func() { comp.Complete(c.callSync(txn, start)) }()
		return
	}
	a := asyncCallPool.Get().(*asyncCall)
	a.c, a.txn, a.comp, a.start = c, txn, comp, start
	exec.CallAsync(txn, a)
}

// LoadRow inserts a row directly into whichever partition owns the key,
// bypassing stored procedures and synthetic service time. For bulk-loading
// benchmark data. Loads bypass the fsynced command log (with durability on,
// call SnapshotAll after bulk loading to checkpoint them) but still ship to
// replicas — standbys must see every row a primary holds.
func (c *Cluster) LoadRow(table, key string, cols map[string]string) error {
	for attempt := 0; attempt < 64; attempt++ {
		pid := c.RouteKey(key)
		c.mu.RLock()
		exec := c.execs[pid]
		feed := c.feeds[pid]
		c.mu.RUnlock()
		if exec == nil {
			return fmt.Errorf("cluster: no executor for partition %d", pid)
		}
		err := exec.Do(func(p *storage.Partition) (int, error) {
			if perr := p.Put(table, key, cols); perr != nil {
				return 0, perr
			}
			if feed != nil {
				return 0, feed.LogPut(table, key, cols)
			}
			return 0, nil
		})
		if storage.IsNotOwned(err) ||
			errors.Is(err, engine.ErrStopped) ||
			errors.Is(err, replication.ErrFenced) ||
			errors.Is(err, replication.ErrClosed) ||
			errors.Is(err, replication.ErrQuorumLost) {
			time.Sleep(c.cfg.retryInterval())
			continue
		}
		return err
	}
	return fmt.Errorf("cluster: LoadRow %q: bucket stayed in flight", key)
}

// TotalRows counts rows across all partitions. Counting runs through each
// executor, so it is consistent per partition but not globally atomic.
func (c *Cluster) TotalRows() (int, error) {
	total := 0
	for _, e := range c.executors() {
		n := 0
		err := e.Do(func(p *storage.Partition) (int, error) {
			n = p.RowCount()
			return 0, nil
		})
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// BucketCounts returns the number of buckets owned per partition.
func (c *Cluster) BucketCounts() map[int]int {
	rt := c.route.Load()
	out := make(map[int]int)
	for _, pid := range rt.owner {
		out[pid]++
	}
	return out
}

// executors returns a snapshot of all executors ordered by partition ID.
func (c *Cluster) executors() []*engine.Executor {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pids := make([]int, 0, len(c.execs))
	for pid := range c.execs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	out := make([]*engine.Executor, len(pids))
	for i, pid := range pids {
		out[i] = c.execs[pid]
	}
	return out
}

// Executors returns all executors ordered by partition ID.
func (c *Cluster) Executors() []*engine.Executor { return c.executors() }

// Latencies returns the cluster-wide end-to-end latency recorder.
func (c *Cluster) Latencies() *metrics.ShardedRecorder { return c.latencies }

// OfferedLoad returns the counter of submitted transactions per second.
func (c *Cluster) OfferedLoad() *metrics.Counter { return c.offered }

// Allocation returns the machine-count tracker (for Eq. 1 cost accounting).
func (c *Cluster) Allocation() *metrics.AllocationTracker { return c.allocLog }

// Events returns the cluster's rare-path event counters (load sheds,
// migration retries, injected faults).
func (c *Cluster) Events() *metrics.Events { return c.events }

// ShedTotal sums admission-control drops across all current executors.
func (c *Cluster) ShedTotal() int64 {
	var n int64
	for _, e := range c.executors() {
		n += e.Shed()
	}
	return n
}

// ShedRetryAfter is the backoff hint attached to overload fast-fails: half
// the time a full executor queue needs to drain, clamped to [1ms, 2s]. A
// client that waits this long before retrying arrives when roughly half the
// backlog has cleared instead of piling onto a saturated queue.
func (c *Cluster) ShedRetryAfter() time.Duration {
	depth := c.cfg.Engine.QueueDepth
	if depth <= 0 {
		depth = 8192
	}
	hint := time.Duration(depth) * c.cfg.Engine.ServiceTime / 2
	if hint < time.Millisecond {
		hint = time.Millisecond
	}
	if hint > 2*time.Second {
		hint = 2 * time.Second
	}
	return hint
}

// FenceRetryAfter is the backoff hint attached to writes shed while their
// primary is fenced or below its write quorum: two monitor health intervals,
// since the monitor needs at least one probe-and-respawn round to restore
// the quorum or promote a successor.
func (c *Cluster) FenceRetryAfter() time.Duration {
	d := 2 * c.replOpts().HealthInterval
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}

// ContentChecksum returns an order-independent FNV-1a checksum over every
// row in the cluster (table, key, sorted columns), plus the row count.
// Chaos tests compare it before and after a faulty reconfiguration to prove
// no row was lost or duplicated. Each partition is read through its
// executor, so per-partition reads are consistent; run it while the
// workload is quiesced for a globally exact answer.
func (c *Cluster) ContentChecksum() (uint64, int, error) {
	var sum uint64
	rows := 0
	for _, e := range c.executors() {
		err := e.Do(func(p *storage.Partition) (int, error) {
			for _, table := range p.Tables() {
				t := table
				_, err := p.Scan(t, func(r storage.Row) bool {
					sum ^= rowChecksum(t, r) // XOR: commutative, order-free
					rows++
					return true
				})
				if err != nil {
					return 0, err
				}
			}
			return 0, nil
		})
		if err != nil && !errors.Is(err, engine.ErrStopped) {
			return 0, 0, err
		}
	}
	return sum, rows, nil
}

// rowChecksum hashes one row deterministically (FNV-1a over table, key and
// column pairs in sorted order).
func rowChecksum(table string, r storage.Row) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff // field separator
		h *= prime
	}
	mix(table)
	mix(r.Key)
	cols := make([]string, 0, len(r.Cols))
	for k := range r.Cols {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	for _, k := range cols {
		mix(k)
		mix(r.Cols[k])
	}
	return h
}
