// Package cluster manages a multi-node, shared-nothing P-Store deployment:
// node lifecycle (scale-out adds nodes, scale-in retires them), the
// bucket→partition routing table that the migrator rewrites during live
// reconfigurations, and cluster-wide load and latency measurement.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pstore/internal/engine"
	"pstore/internal/metrics"
	"pstore/internal/storage"
)

// Config describes a cluster deployment.
type Config struct {
	// InitialNodes is the number of nodes at startup.
	InitialNodes int
	// PartitionsPerNode is P: each node hosts this many serial executors
	// (the paper's experiments use 6).
	PartitionsPerNode int
	// NBuckets is the global hash-bucket count, the granularity of data
	// movement. It should be much larger than the maximum partition count.
	NBuckets int
	// Tables are created on every partition.
	Tables []string
	// Registry holds the stored procedures.
	Registry *engine.Registry
	// Engine configures every executor.
	Engine engine.Config
	// RetryInterval is the backoff between routing retries when a key's
	// bucket is in flight during a migration. Defaults to 200µs.
	RetryInterval time.Duration
	// RetryBudget bounds how long a transaction keeps retrying before
	// giving up. Defaults to 10s.
	RetryBudget time.Duration
	// LatencyWindow is the aggregation window of the cluster's latency
	// percentiles (the paper windows by second; compressed-time
	// experiments use shorter windows). Defaults to 1s.
	LatencyWindow time.Duration
}

func (c Config) retryInterval() time.Duration {
	if c.RetryInterval <= 0 {
		return 200 * time.Microsecond
	}
	return c.RetryInterval
}

func (c Config) retryBudget() time.Duration {
	if c.RetryBudget <= 0 {
		return 10 * time.Second
	}
	return c.RetryBudget
}

// Node is one machine in the cluster, hosting PartitionsPerNode executors.
type Node struct {
	ID         int
	Partitions []int
}

// Cluster is a live deployment. All methods are safe for concurrent use.
type Cluster struct {
	cfg Config

	mu       sync.RWMutex
	nodes    []*Node                  // sorted by ID
	execs    map[int]*engine.Executor // partition → executor
	owner    []int                    // bucket → partition
	nextNode int
	nextPart int
	stopped  bool

	latencies *metrics.LatencyRecorder
	offered   *metrics.Counter
	allocLog  *metrics.AllocationTracker

	reconfigMu sync.Mutex
	reconfig   bool
}

// New starts a cluster with the configured initial nodes; buckets are dealt
// round-robin across the initial partitions.
func New(cfg Config) (*Cluster, error) {
	if cfg.InitialNodes < 1 {
		return nil, fmt.Errorf("cluster: InitialNodes must be ≥ 1, got %d", cfg.InitialNodes)
	}
	if cfg.PartitionsPerNode < 1 {
		return nil, fmt.Errorf("cluster: PartitionsPerNode must be ≥ 1, got %d", cfg.PartitionsPerNode)
	}
	if cfg.NBuckets < cfg.InitialNodes*cfg.PartitionsPerNode {
		return nil, fmt.Errorf("cluster: NBuckets %d below initial partition count", cfg.NBuckets)
	}
	if cfg.Registry == nil {
		return nil, errors.New("cluster: Registry is required")
	}
	window := cfg.LatencyWindow
	if window <= 0 {
		window = time.Second
	}
	c := &Cluster{
		cfg:       cfg,
		execs:     make(map[int]*engine.Executor),
		owner:     make([]int, cfg.NBuckets),
		latencies: metrics.NewLatencyRecorder(window),
		offered:   metrics.NewCounter(time.Second),
		allocLog:  metrics.NewAllocationTracker(time.Now(), cfg.InitialNodes),
	}
	nParts := cfg.InitialNodes * cfg.PartitionsPerNode
	ownedBy := make([][]int, nParts)
	for b := 0; b < cfg.NBuckets; b++ {
		p := b % nParts
		ownedBy[p] = append(ownedBy[p], b)
		c.owner[b] = p
	}
	for n := 0; n < cfg.InitialNodes; n++ {
		node := &Node{ID: c.nextNode}
		c.nextNode++
		for i := 0; i < cfg.PartitionsPerNode; i++ {
			pid := c.nextPart
			c.nextPart++
			part := storage.NewPartition(pid, cfg.NBuckets, ownedBy[pid])
			for _, t := range cfg.Tables {
				part.CreateTable(t)
			}
			c.execs[pid] = engine.NewExecutor(part, cfg.Registry, cfg.Engine)
			node.Partitions = append(node.Partitions, pid)
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// Stop shuts down every executor.
func (c *Cluster) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.stopped = true
	for _, e := range c.execs {
		e.Stop()
	}
}

// NumNodes returns the current node count.
func (c *Cluster) NumNodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// Nodes returns a snapshot of the current nodes, ordered by ID.
func (c *Cluster) Nodes() []Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Node, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = Node{ID: n.ID, Partitions: append([]int(nil), n.Partitions...)}
	}
	return out
}

// AddNode provisions a new empty node (no buckets) and returns it. Data
// arrives via migration.
func (c *Cluster) AddNode() Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	node := &Node{ID: c.nextNode}
	c.nextNode++
	for i := 0; i < c.cfg.PartitionsPerNode; i++ {
		pid := c.nextPart
		c.nextPart++
		part := storage.NewPartition(pid, c.cfg.NBuckets, nil)
		for _, t := range c.cfg.Tables {
			part.CreateTable(t)
		}
		c.execs[pid] = engine.NewExecutor(part, c.cfg.Registry, c.cfg.Engine)
		node.Partitions = append(node.Partitions, pid)
	}
	c.nodes = append(c.nodes, node)
	c.allocLog.Set(time.Now(), len(c.nodes))
	return Node{ID: node.ID, Partitions: append([]int(nil), node.Partitions...)}
}

// RemoveNode retires a node whose partitions no longer own any buckets.
func (c *Cluster) RemoveNode(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := -1
	for i, n := range c.nodes {
		if n.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("cluster: no node %d", id)
	}
	if len(c.nodes) == 1 {
		return errors.New("cluster: cannot remove the last node")
	}
	node := c.nodes[idx]
	for _, pid := range node.Partitions {
		for _, owner := range c.owner {
			if owner == pid {
				return fmt.Errorf("cluster: node %d partition %d still owns buckets", id, pid)
			}
		}
	}
	for _, pid := range node.Partitions {
		c.execs[pid].Stop()
		delete(c.execs, pid)
	}
	c.nodes = append(c.nodes[:idx], c.nodes[idx+1:]...)
	c.allocLog.Set(time.Now(), len(c.nodes))
	return nil
}

// BeginReconfiguration takes the cluster's reconfiguration lock. Exactly
// one reconfiguration may run at a time: concurrent bucket moves would race
// on ownership. It returns false if another reconfiguration is in progress.
func (c *Cluster) BeginReconfiguration() bool {
	c.reconfigMu.Lock()
	defer c.reconfigMu.Unlock()
	if c.reconfig {
		return false
	}
	c.reconfig = true
	return true
}

// EndReconfiguration releases the reconfiguration lock.
func (c *Cluster) EndReconfiguration() {
	c.reconfigMu.Lock()
	c.reconfig = false
	c.reconfigMu.Unlock()
}

// Reconfiguring reports whether a reconfiguration is in progress.
func (c *Cluster) Reconfiguring() bool {
	c.reconfigMu.Lock()
	defer c.reconfigMu.Unlock()
	return c.reconfig
}

// OwnerOf returns the partition currently owning the bucket.
func (c *Cluster) OwnerOf(bucket int) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.owner[bucket]
}

// SetOwner points the routing table for a bucket at a partition. The
// migrator calls this when it starts moving the bucket, so retries land on
// the destination.
func (c *Cluster) SetOwner(bucket, partition int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.owner[bucket] = partition
}

// ExecutorOf returns the executor hosting the partition.
func (c *Cluster) ExecutorOf(partition int) (*engine.Executor, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.execs[partition]
	return e, ok
}

// RouteKey returns the partition a key currently routes to.
func (c *Cluster) RouteKey(key string) int {
	return c.OwnerOf(storage.BucketOf(key, c.cfg.NBuckets))
}

// NBuckets returns the global bucket count.
func (c *Cluster) NBuckets() int { return c.cfg.NBuckets }

// PartitionsPerNode returns P.
func (c *Cluster) PartitionsPerNode() int { return c.cfg.PartitionsPerNode }

// Call routes a transaction by its key and executes it, retrying while the
// key's bucket is in flight between partitions. End-to-end latency
// (including retries and queueing) is recorded in Latencies.
func (c *Cluster) Call(txn *engine.Txn) engine.Result {
	start := time.Now()
	c.offered.Add(start, 1)
	deadline := start.Add(c.cfg.retryBudget())
	var res engine.Result
	for {
		pid := c.RouteKey(txn.Key)
		exec, ok := c.ExecutorOf(pid)
		if !ok {
			res = engine.Result{Err: fmt.Errorf("cluster: no executor for partition %d", pid)}
		} else {
			res = exec.Call(txn)
		}
		var notOwned *storage.ErrNotOwned
		retriable := errors.As(res.Err, &notOwned) ||
			errors.Is(res.Err, engine.ErrStopped) ||
			(res.Err != nil && !ok)
		if !retriable || time.Now().After(deadline) {
			break
		}
		time.Sleep(c.cfg.retryInterval())
	}
	res.Latency = time.Since(start)
	c.latencies.Record(time.Now(), res.Latency)
	return res
}

// LoadRow inserts a row directly into whichever partition owns the key,
// bypassing stored procedures and synthetic service time. For bulk-loading
// benchmark data.
func (c *Cluster) LoadRow(table, key string, cols map[string]string) error {
	for attempt := 0; attempt < 64; attempt++ {
		pid := c.RouteKey(key)
		exec, ok := c.ExecutorOf(pid)
		if !ok {
			return fmt.Errorf("cluster: no executor for partition %d", pid)
		}
		err := exec.Do(func(p *storage.Partition) (int, error) {
			return 0, p.Put(table, key, cols)
		})
		var notOwned *storage.ErrNotOwned
		if errors.As(err, &notOwned) {
			time.Sleep(c.cfg.retryInterval())
			continue
		}
		return err
	}
	return fmt.Errorf("cluster: LoadRow %q: bucket stayed in flight", key)
}

// TotalRows counts rows across all partitions. Counting runs through each
// executor, so it is consistent per partition but not globally atomic.
func (c *Cluster) TotalRows() (int, error) {
	total := 0
	for _, e := range c.executors() {
		n := 0
		err := e.Do(func(p *storage.Partition) (int, error) {
			n = p.RowCount()
			return 0, nil
		})
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// BucketCounts returns the number of buckets owned per partition.
func (c *Cluster) BucketCounts() map[int]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[int]int)
	for _, pid := range c.owner {
		out[pid]++
	}
	return out
}

// executors returns a snapshot of all executors ordered by partition ID.
func (c *Cluster) executors() []*engine.Executor {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pids := make([]int, 0, len(c.execs))
	for pid := range c.execs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	out := make([]*engine.Executor, len(pids))
	for i, pid := range pids {
		out[i] = c.execs[pid]
	}
	return out
}

// Executors returns all executors ordered by partition ID.
func (c *Cluster) Executors() []*engine.Executor { return c.executors() }

// Latencies returns the cluster-wide end-to-end latency recorder.
func (c *Cluster) Latencies() *metrics.LatencyRecorder { return c.latencies }

// OfferedLoad returns the counter of submitted transactions per second.
func (c *Cluster) OfferedLoad() *metrics.Counter { return c.offered }

// Allocation returns the machine-count tracker (for Eq. 1 cost accounting).
func (c *Cluster) Allocation() *metrics.AllocationTracker { return c.allocLog }
