package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pstore/internal/storage"
)

// Fault-injection tests for multi-partition 2PC (MultiDo): a participant
// frozen during the prepare phase, and a participant lost before commit.
// The invariant under every fault is atomicity — either all participating
// partitions apply the transaction or none do — plus clean abort
// accounting: a failed coordination leaves every executor serving.

func newChaosExecutors(t *testing.T, n int) []*Executor {
	t.Helper()
	reg := testRegistry()
	execs := make([]*Executor, n)
	for i := 0; i < n; i++ {
		p := storage.NewPartition(i, 16, allBuckets(16))
		p.CreateTable("T")
		execs[i] = NewExecutor(p, reg, Config{})
	}
	t.Cleanup(func() {
		for _, e := range execs {
			e.Stop()
		}
	})
	return execs
}

// TestMultiDoParticipantFrozenDuringPrepare freezes one participant (its
// executor goroutine busy in a long administrative task — what the fault
// injector's freeze schedule does) while a coordinator gathers
// reservations. The distributed transaction must wait out the freeze and
// then commit atomically on all participants, never observing or leaving a
// partial state.
func TestMultiDoParticipantFrozenDuringPrepare(t *testing.T) {
	execs := newChaosExecutors(t, 3)
	var frozenDone atomic.Bool
	frozen := make(chan struct{})
	go func() {
		// Occupies executor 2's goroutine, like a freeze fault. Priority-lane
		// FIFO guarantees this runs before the coordinator's reservation of
		// executor 2 that is issued after <-frozen.
		execs[2].Do(func(p *storage.Partition) (int, error) {
			close(frozen)
			time.Sleep(80 * time.Millisecond)
			frozenDone.Store(true)
			return 0, nil
		})
	}()
	<-frozen
	err := MultiDo(execs, func(parts []*storage.Partition) error {
		if !frozenDone.Load() {
			return errors.New("commit body entered while a participant was still frozen")
		}
		for _, p := range parts {
			if err := p.Put("T", "pair", map[string]string{"v": "committed"}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("MultiDo should wait out a frozen participant: %v", err)
	}
	for _, e := range execs {
		res := e.Call(&Txn{Proc: "Get", Key: "pair"})
		if res.Err != nil {
			t.Fatalf("partition %d: %v", e.Partition(), res.Err)
		}
		if res.Out["v"] != "committed" {
			t.Errorf("partition %d saw %q — partial application", e.Partition(), res.Out["v"])
		}
	}
}

// TestMultiDoParticipantLostBeforeCommit stops a participant before the
// coordinator can reserve it — the embedded-engine analogue of losing the
// connection to a prepare-acked node. The transaction must abort cleanly:
// typed error, zero writes on the surviving participants, and those
// participants still serving afterwards.
func TestMultiDoParticipantLostBeforeCommit(t *testing.T) {
	execs := newChaosExecutors(t, 3)
	execs[2].Stop() // participant lost; MultiDo reserves 0, 1, then fails on 2
	err := MultiDo(execs, func(parts []*storage.Partition) error {
		for _, p := range parts {
			if err := p.Put("T", "lost", map[string]string{"v": "x"}); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want to wrap ErrStopped", err)
	}
	// No partial application: the commit body never ran, so the surviving
	// partitions hold nothing.
	for _, e := range execs[:2] {
		res := e.Call(&Txn{Proc: "Get", Key: "lost"})
		if res.Err == nil || !IsAbort(res.Err) {
			t.Errorf("partition %d has a row from an aborted 2PC (err=%v)", e.Partition(), res.Err)
		}
	}
	// Clean abort: reservations taken before the failure were released, so
	// the survivors keep serving single-partition work immediately.
	for _, e := range execs[:2] {
		if res := e.Call(&Txn{Proc: "Put", Key: "after", Args: map[string]string{"v": "1"}}); res.Err != nil {
			t.Errorf("partition %d wedged after aborted 2PC: %v", e.Partition(), res.Err)
		}
	}
}

// TestMultiDoBodyErrorReleasesParticipants injects the fault inside the
// commit body itself (the coordinator decides to abort after prepare). All
// reservations must be released and abort accounting must stay clean: no
// deadlock, no lingering parked executors, later transactions run.
func TestMultiDoBodyErrorReleasesParticipants(t *testing.T) {
	execs := newChaosExecutors(t, 3)
	injected := errors.New("coordinator-side fault before commit")
	err := MultiDo(execs, func(parts []*storage.Partition) error {
		// Abort before touching any partition — the decision point between
		// prepare and commit.
		return injected
	})
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, e := range execs {
			if res := e.Call(&Txn{Proc: "Put", Key: "k", Args: map[string]string{"v": "1"}}); res.Err != nil {
				t.Errorf("partition %d: %v", e.Partition(), res.Err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("executors still parked after aborted MultiDo — release leak")
	}
}

// TestMultiDoConcurrentWithFreezeNoTornReads hammers a pair of partitions
// with multi-partition transfers while a chaos goroutine repeatedly
// freezes one participant. A concurrent multi-partition reader must always
// observe the conserved total — any torn read means 2PC atomicity broke
// under the fault schedule.
func TestMultiDoConcurrentWithFreezeNoTornReads(t *testing.T) {
	execs := newChaosExecutors(t, 2)
	const total = 100
	seed := func(p *storage.Partition, v int) error {
		return p.Put("T", "bal", map[string]string{"v": fmt.Sprint(v)})
	}
	if err := MultiDo(execs, func(parts []*storage.Partition) error {
		if err := seed(parts[0], total); err != nil {
			return err
		}
		return seed(parts[1], 0)
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	chaosDone := make(chan struct{})
	go func() { // freeze loop on participant 1
		defer close(chaosDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			execs[1].Do(func(p *storage.Partition) (int, error) {
				time.Sleep(2 * time.Millisecond)
				return 0, nil
			})
			time.Sleep(time.Millisecond)
		}
	}()
	readBal := func(p *storage.Partition) (int, error) {
		r, ok, err := p.Get("T", "bal")
		if err != nil || !ok {
			return 0, fmt.Errorf("missing balance: %v", err)
		}
		var n int
		fmt.Sscanf(r.Cols["v"], "%d", &n)
		return n, nil
	}
	writerDone := make(chan error, 1)
	go func() { // transfers: move 1 unit 0→1 per round
		for i := 0; i < 60; i++ {
			err := MultiDo(execs, func(parts []*storage.Partition) error {
				a, err := readBal(parts[0])
				if err != nil {
					return err
				}
				b, err := readBal(parts[1])
				if err != nil {
					return err
				}
				if err := seed(parts[0], a-1); err != nil {
					return err
				}
				return seed(parts[1], b+1)
			})
			if err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()
	for i := 0; i < 40; i++ {
		err := MultiDo(execs, func(parts []*storage.Partition) error {
			a, err := readBal(parts[0])
			if err != nil {
				return err
			}
			b, err := readBal(parts[1])
			if err != nil {
				return err
			}
			if a+b != total {
				return fmt.Errorf("torn read: %d + %d != %d", a, b, total)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := <-writerDone; err != nil {
		t.Fatalf("transfer writer: %v", err)
	}
	close(stop)
	<-chaosDone
}
