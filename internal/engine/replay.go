package engine

import (
	"fmt"

	"pstore/internal/storage"
)

// CommandLog is the durability hook the executor writes through. It is
// implemented by internal/durability; the engine only sees this interface so
// the dependency points outward (durability imports engine for replay, not
// the reverse).
type CommandLog interface {
	// Append schedules a committed command for a durable append. onDurable
	// is invoked exactly once — typically from the group-commit goroutine —
	// after the record reaches stable storage (nil) or the write fails
	// (non-nil). The executor defers the client ack into this callback, so
	// a transaction is never acknowledged before it is durable. lsn is the
	// record's log sequence number; clients use it to anchor
	// read-your-writes sessions against replicas. Implementations that ship
	// the log to replicas (internal/replication) additionally delay the
	// callback until every live replica has acknowledged lsn — synchronous
	// k-safety — and may fail the append with a fencing error after the
	// partition's primaryship moved.
	Append(proc, key string, args map[string]string, onDurable func(lsn uint64, err error))
}

// ReplayTxn runs a stored procedure directly against a partition, outside
// any executor — the recovery path re-executing a command-log record.
// Because procedures are deterministic functions of (proc, key, args) and
// partition state, replaying the logged commands in order rebuilds exactly
// the pre-crash state. Intentional aborts are deterministic too and are not
// errors during replay.
func ReplayTxn(reg *Registry, part *storage.Partition, proc, key string, args map[string]string) (err error) {
	p, ok := reg.Lookup(proc)
	if !ok {
		return fmt.Errorf("engine: replay of unknown procedure %q", proc)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: replayed procedure %q panicked: %v", proc, r)
		}
	}()
	txn := &Txn{Proc: proc, Key: key, Args: args, part: part}
	err = p(txn)
	txn.part = nil
	if err != nil && IsAbort(err) {
		return nil
	}
	return err
}

// ReadOnlyCall runs a stored procedure against a partition outside any
// executor and returns its output map — the replica read path. The caller
// must hold whatever lock serializes access to the partition (a replica's
// apply mutex) and should have put the partition in read-only mode so a
// mistakenly routed writing procedure fails instead of silently diverging
// the replica from its primary.
func ReadOnlyCall(reg *Registry, part *storage.Partition, proc, key string, args map[string]string) (out map[string]string, err error) {
	p, ok := reg.Lookup(proc)
	if !ok {
		return nil, fmt.Errorf("engine: unknown procedure %q", proc)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: procedure %q panicked: %v", proc, r)
		}
	}()
	txn := &Txn{Proc: proc, Key: key, Args: args, part: part}
	err = p(txn)
	txn.part = nil
	return txn.out, err
}
