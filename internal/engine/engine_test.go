package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pstore/internal/metrics"
	"pstore/internal/storage"
)

func testRegistry() *Registry {
	reg := NewRegistry()
	reg.Register("Put", func(tx *Txn) error {
		return tx.Put("T", tx.Key, map[string]string{"v": tx.Arg("v")})
	})
	reg.Register("Get", func(tx *Txn) error {
		r, ok, err := tx.Get("T", tx.Key)
		if err != nil {
			return err
		}
		if !ok {
			return tx.Abort("not found")
		}
		tx.SetOut("v", r.Cols["v"])
		return nil
	})
	reg.Register("Delete", func(tx *Txn) error {
		_, err := tx.Delete("T", tx.Key)
		return err
	})
	return reg
}

func allBuckets(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func newTestExecutor(cfg Config) *Executor {
	p := storage.NewPartition(0, 16, allBuckets(16))
	p.CreateTable("T")
	return NewExecutor(p, testRegistry(), cfg)
}

func TestExecutorBasicTxns(t *testing.T) {
	e := newTestExecutor(Config{})
	defer e.Stop()
	res := e.Call(&Txn{Proc: "Put", Key: "k1", Args: map[string]string{"v": "hello"}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	res = e.Call(&Txn{Proc: "Get", Key: "k1"})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Out["v"] != "hello" {
		t.Errorf("out = %v", res.Out)
	}
	if res.Latency <= 0 {
		t.Error("latency should be positive")
	}
	if e.Processed() != 2 {
		t.Errorf("Processed = %d, want 2", e.Processed())
	}
}

func TestExecutorAbort(t *testing.T) {
	e := newTestExecutor(Config{})
	defer e.Stop()
	res := e.Call(&Txn{Proc: "Get", Key: "missing"})
	if !IsAbort(res.Err) {
		t.Errorf("err = %v, want abort", res.Err)
	}
	if e.Aborted() != 1 {
		t.Errorf("Aborted = %d, want 1", e.Aborted())
	}
}

func TestExecutorUnknownProcedure(t *testing.T) {
	e := newTestExecutor(Config{})
	defer e.Stop()
	res := e.Call(&Txn{Proc: "Nope", Key: "k"})
	if res.Err == nil {
		t.Error("unknown procedure should fail")
	}
}

func TestExecutorSerializesConcurrentWrites(t *testing.T) {
	e := newTestExecutor(Config{})
	defer e.Stop()
	var wg sync.WaitGroup
	const n = 500
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := e.Call(&Txn{Proc: "Put", Key: fmt.Sprintf("k%d", i), Args: map[string]string{"v": "x"}})
			if res.Err != nil {
				t.Errorf("put %d: %v", i, res.Err)
			}
		}(i)
	}
	wg.Wait()
	if got := e.Processed(); got != n {
		t.Errorf("Processed = %d, want %d", got, n)
	}
}

func TestExecutorServiceTimeBoundsThroughput(t *testing.T) {
	e := newTestExecutor(Config{ServiceTime: 2 * time.Millisecond})
	defer e.Stop()
	start := time.Now()
	const n = 20
	for i := 0; i < n; i++ {
		if res := e.Call(&Txn{Proc: "Put", Key: "k", Args: map[string]string{"v": "x"}}); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if elapsed := time.Since(start); elapsed < n*2*time.Millisecond {
		t.Errorf("20 txns at 2ms service time took %v, want ≥ 40ms", elapsed)
	}
}

func TestExecutorOverload(t *testing.T) {
	e := newTestExecutor(Config{ServiceTime: 50 * time.Millisecond, QueueDepth: 2})
	defer e.Stop()
	var overloaded bool
	for i := 0; i < 20; i++ {
		_, err := e.Submit(&Txn{Proc: "Put", Key: "k", Args: map[string]string{"v": "x"}})
		if errors.Is(err, ErrOverloaded) {
			overloaded = true
			break
		}
	}
	if !overloaded {
		t.Error("tiny queue should overflow")
	}
}

func TestExecutorStop(t *testing.T) {
	e := newTestExecutor(Config{})
	e.Stop()
	if _, err := e.Submit(&Txn{Proc: "Put", Key: "k"}); !errors.Is(err, ErrStopped) {
		t.Errorf("err = %v, want ErrStopped", err)
	}
	if err := e.Do(func(p *storage.Partition) (int, error) { return 0, nil }); !errors.Is(err, ErrStopped) {
		t.Errorf("Do err = %v, want ErrStopped", err)
	}
}

func TestExecutorDoMigrationWork(t *testing.T) {
	e := newTestExecutor(Config{MigrationRowCost: time.Microsecond})
	defer e.Stop()
	for i := 0; i < 50; i++ {
		e.Call(&Txn{Proc: "Put", Key: fmt.Sprintf("k%d", i), Args: map[string]string{"v": "x"}})
	}
	var data *storage.BucketData
	err := e.Do(func(p *storage.Partition) (int, error) {
		var err error
		data, err = p.ExtractBucket(p.OwnedBuckets()[0])
		if err != nil {
			return 0, err
		}
		return data.RowCount(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.MigratedRows() != int64(data.RowCount()) {
		t.Errorf("MigratedRows = %d, want %d", e.MigratedRows(), data.RowCount())
	}
}

func TestExecutorRecordsLatencies(t *testing.T) {
	rec := metrics.NewLatencyRecorder(time.Second)
	e := newTestExecutor(Config{Recorder: rec})
	defer e.Stop()
	for i := 0; i < 10; i++ {
		e.Call(&Txn{Proc: "Put", Key: "k", Args: map[string]string{"v": "x"}})
	}
	if rec.Count() != 10 {
		t.Errorf("recorded = %d, want 10", rec.Count())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	reg := NewRegistry()
	reg.Register("X", func(tx *Txn) error { return nil })
	reg.Register("X", func(tx *Txn) error { return nil })
}

func TestMultiDoSerializable(t *testing.T) {
	reg := testRegistry()
	var execs []*Executor
	for i := 0; i < 3; i++ {
		p := storage.NewPartition(i, 16, allBuckets(16))
		p.CreateTable("T")
		execs = append(execs, NewExecutor(p, reg, Config{}))
	}
	defer func() {
		for _, e := range execs {
			e.Stop()
		}
	}()
	// Concurrent multi-partition increments across all three partitions
	// must not lose updates.
	var wg sync.WaitGroup
	const rounds = 50
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := MultiDo(execs, func(parts []*storage.Partition) error {
					for _, p := range parts {
						r, ok, err := p.Get("T", "ctr")
						if err != nil {
							return err
						}
						n := 0
						if ok {
							fmt.Sscanf(r.Cols["v"], "%d", &n)
						}
						if err := p.Put("T", "ctr", map[string]string{"v": fmt.Sprint(n + 1)}); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					t.Errorf("MultiDo: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, e := range execs {
		res := e.Call(&Txn{Proc: "Get", Key: "ctr"})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Out["v"] != fmt.Sprint(4*rounds) {
			t.Errorf("partition %d ctr = %s, want %d", e.Partition(), res.Out["v"], 4*rounds)
		}
	}
}

func TestMultiDoValidation(t *testing.T) {
	if err := MultiDo(nil, func([]*storage.Partition) error { return nil }); err == nil {
		t.Error("empty executor list should fail")
	}
	p := storage.NewPartition(0, 4, allBuckets(4))
	e := NewExecutor(p, testRegistry(), Config{})
	defer e.Stop()
	if err := MultiDo([]*Executor{e, e}, func([]*storage.Partition) error { return nil }); err == nil {
		t.Error("duplicate partitions should fail")
	}
}

func TestExecutorSurvivesPanickingProcedure(t *testing.T) {
	reg := testRegistry()
	reg.Register("Boom", func(tx *Txn) error {
		panic("procedure bug")
	})
	p := storage.NewPartition(0, 16, allBuckets(16))
	p.CreateTable("T")
	e := NewExecutor(p, reg, Config{})
	defer e.Stop()
	res := e.Call(&Txn{Proc: "Boom", Key: "k"})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic error", res.Err)
	}
	// The executor keeps serving.
	if res := e.Call(&Txn{Proc: "Put", Key: "k", Args: map[string]string{"v": "1"}}); res.Err != nil {
		t.Fatalf("executor dead after panic: %v", res.Err)
	}
}

func TestMultiDoNoDeadlockUnderContention(t *testing.T) {
	// Coordinators locking overlapping partition sets in different
	// presentation orders must never deadlock: MultiDo sorts by partition
	// ID before reserving.
	reg := testRegistry()
	var execs []*Executor
	for i := 0; i < 4; i++ {
		p := storage.NewPartition(i, 16, allBuckets(16))
		p.CreateTable("T")
		execs = append(execs, NewExecutor(p, reg, Config{}))
	}
	defer func() {
		for _, e := range execs {
			e.Stop()
		}
	}()
	sets := [][]*Executor{
		{execs[0], execs[1], execs[2]},
		{execs[2], execs[1], execs[0]},
		{execs[3], execs[0]},
		{execs[1], execs[3], execs[2]},
	}
	done := make(chan error, len(sets)*50)
	for g, set := range sets {
		go func(g int, set []*Executor) {
			for i := 0; i < 50; i++ {
				err := MultiDo(set, func(parts []*storage.Partition) error {
					for _, p := range parts {
						if err := p.Put("T", fmt.Sprintf("g%d", g), map[string]string{"i": fmt.Sprint(i)}); err != nil {
							return err
						}
					}
					return nil
				})
				done <- err
			}
		}(g, set)
	}
	timeout := time.After(30 * time.Second)
	for i := 0; i < len(sets)*50; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("deadlock: MultiDo coordinators never finished")
		}
	}
}

// TestDoBackgroundRunsBehindQueuedTxns pins the background lane's ordering
// contract: a DoBackground task enqueued after transactions runs only once
// those transactions have committed, and its row count is charged as
// migration work like Do's.
func TestDoBackgroundRunsBehindQueuedTxns(t *testing.T) {
	var committed atomic.Int64
	reg := NewRegistry()
	reg.Register("Inc", func(tx *Txn) error {
		committed.Add(1)
		return nil
	})
	p := storage.NewPartition(0, 16, allBuckets(16))
	p.CreateTable("T")
	e := NewExecutor(p, reg, Config{MigrationRowCost: time.Nanosecond})
	defer e.Stop()

	// Park the executor so the queue accumulates deterministically.
	release, err := e.Reserve()
	if err != nil {
		t.Fatal(err)
	}
	const txns = 5
	for i := 0; i < txns; i++ {
		if _, err := e.Submit(&Txn{Proc: "Inc", Key: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	var seen int64
	done := make(chan error, 1)
	go func() {
		done <- e.DoBackground(func(p *storage.Partition) (int, error) {
			seen = committed.Load()
			return 7, nil
		})
	}()
	// Give the goroutine time to enqueue behind the transactions, then let
	// the executor run. FIFO order in the regular queue does the rest.
	time.Sleep(20 * time.Millisecond)
	release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if seen != txns {
		t.Errorf("background task saw %d committed txns, want %d", seen, txns)
	}
	if e.MigratedRows() != 7 {
		t.Errorf("MigratedRows = %d, want 7", e.MigratedRows())
	}
}

func TestDoBackgroundErrors(t *testing.T) {
	e := newTestExecutor(Config{})
	wantErr := errors.New("boom")
	if err := e.DoBackground(func(p *storage.Partition) (int, error) { return 0, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
	e.Stop()
	if err := e.DoBackground(func(p *storage.Partition) (int, error) { return 0, nil }); !errors.Is(err, ErrStopped) {
		t.Errorf("err after stop = %v, want ErrStopped", err)
	}
}
