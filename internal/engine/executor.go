package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/metrics"
	"pstore/internal/storage"
)

// ErrOverloaded is returned when an executor's queue is full: the partition
// cannot absorb the offered load.
var ErrOverloaded = errors.New("engine: executor queue full")

// ErrStopped is returned for submissions to a stopped executor.
var ErrStopped = errors.New("engine: executor stopped")

// Config holds executor tuning knobs shared across a cluster.
type Config struct {
	// ServiceTime is the synthetic CPU time consumed by each transaction.
	// The paper adds an artificial delay per transaction to emulate B2W's
	// production per-transaction cost on much faster H-Store hardware
	// (§7); we use the same trick to give each partition a well-defined
	// saturation throughput of 1/ServiceTime.
	ServiceTime time.Duration
	// MigrationRowCost is the synthetic CPU time per row spent extracting
	// or applying a migration chunk. Moving data steals these cycles from
	// transaction processing — the source of reconfiguration overhead.
	MigrationRowCost time.Duration
	// QueueDepth bounds the executor's task queue; submissions beyond it
	// fail with ErrOverloaded. Defaults to 8192.
	QueueDepth int
	// Recorder, if set, receives the latency of every completed
	// transaction. Use a sharded recorder (metrics.NewShardedRecorder)
	// when many executors share one, so the hot path never crosses a
	// global mutex.
	Recorder metrics.Recorder
	// Log, if set, receives every committed writing transaction before the
	// client is acked (command logging). When nil the executor takes the
	// in-memory fast path with no durability overhead.
	Log CommandLog
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 8192
	}
	return c.QueueDepth
}

// Result is the outcome of a transaction.
type Result struct {
	Out     map[string]string
	Err     error
	Latency time.Duration
	// Partition is the partition that executed the transaction; LSN is the
	// command-log position of a logged write (zero for reads and for
	// configurations without a command log). Clients use the pair to track
	// per-partition read-your-writes sessions against replicas.
	Partition int
	LSN       uint64
}

// Executor runs one partition's work serially: transactions, migration
// chunk extraction/application, and administrative functions all share the
// single goroutine, exactly like an H-Store partition engine. Migration and
// administrative tasks (Do, Reserve) go through a priority lane dispatched
// ahead of queued transactions, as Squall schedules reconfiguration work —
// they still consume the executor's time, so migration interferes with
// transaction latency, but a transaction backlog cannot starve a
// reconfiguration.
type Executor struct {
	cfg   Config
	part  *storage.Partition
	reg   *Registry
	queue chan task
	prio  chan task
	done  chan struct{}
	quit  chan struct{} // closed by Stop; wakes a pacing executor immediately

	// stopMu serializes queue sends against Stop's close: senders hold the
	// read side while checking stopped and sending, so close never races
	// with an in-flight send.
	stopMu  sync.RWMutex
	stopped bool

	processed atomic.Int64
	aborted   atomic.Int64
	migRows   atomic.Int64
	shed      atomic.Int64

	// workClock is the executor's virtual busy-until time, used to charge
	// synthetic work precisely even on hosts with coarse sleep timers:
	// oversleeping one transaction shortens the wait of the next, so the
	// sustained service rate is exactly 1/ServiceTime. Only the executor
	// goroutine touches it.
	workClock time.Time
	// spinTimer paces synthetic work; reused across transactions so the hot
	// path allocates no timers. Only the executor goroutine touches it.
	spinTimer *time.Timer
}

// Completion receives a transaction's result on the completion path of an
// asynchronous call (CallAsync). Complete runs on the executor goroutine —
// or the group-commit goroutine for logged writes — so implementations must
// be non-blocking and bounded: encode, hand off, return.
type Completion interface {
	Complete(Result)
}

type task struct {
	txn     *Txn
	reply   chan Result
	comp    Completion
	started time.Time

	fn      func(p *storage.Partition) (rows int, err error)
	fnReply chan error

	park chan struct{} // 2PC: signals acquisition, waits for release
	held chan struct{}
}

// NewExecutor starts an executor for the partition. Stop must be called to
// release its goroutine.
func NewExecutor(part *storage.Partition, reg *Registry, cfg Config) *Executor {
	e := &Executor{
		cfg:   cfg,
		part:  part,
		reg:   reg,
		queue: make(chan task, cfg.queueDepth()),
		prio:  make(chan task, 256),
		done:  make(chan struct{}),
		quit:  make(chan struct{}),
	}
	go e.run()
	return e
}

// Partition returns the executor's partition ID.
func (e *Executor) Partition() int { return e.part.ID() }

// QueueLen returns the number of queued tasks (approximate).
func (e *Executor) QueueLen() int { return len(e.queue) }

// Processed returns the number of completed transactions.
func (e *Executor) Processed() int64 { return e.processed.Load() }

// Aborted returns the number of intentionally aborted transactions.
func (e *Executor) Aborted() int64 { return e.aborted.Load() }

// MigratedRows returns the number of rows moved through this executor by
// migration tasks (extractions plus applications).
func (e *Executor) MigratedRows() int64 { return e.migRows.Load() }

// Shed returns the number of submissions fast-failed with ErrOverloaded —
// the executor's admission-control drop count.
func (e *Executor) Shed() int64 { return e.shed.Load() }

// Stop shuts the executor down after draining already queued work. It is
// idempotent.
func (e *Executor) Stop() {
	e.stopMu.Lock()
	if !e.stopped {
		e.stopped = true
		close(e.queue)
		close(e.quit) // cancels any in-progress pacing wait promptly
	}
	e.stopMu.Unlock()
	<-e.done
	e.drainPrio() // fail any priority task that raced in during shutdown
}

// Stopped reports whether Stop has been called. It is the failover
// monitor's fast path: a killed partition's executor reads as stopped
// immediately, without waiting out a probe timeout.
func (e *Executor) Stopped() bool {
	e.stopMu.RLock()
	defer e.stopMu.RUnlock()
	return e.stopped
}

// Healthy probes the executor with a no-op priority task, reporting whether
// it responded within the timeout. A false answer means the executor is
// stopped or wedged (hung procedure, frozen goroutine) — the failover
// monitor's liveness signal. The probe rides the priority lane, so a deep
// transaction backlog does not read as dead.
func (e *Executor) Healthy(timeout time.Duration) bool {
	select {
	case <-e.done:
		return false
	default:
	}
	reply := make(chan error, 1)
	t := task{fn: func(p *storage.Partition) (int, error) { return 0, nil }, fnReply: reply}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case e.prio <- t:
	case <-e.done:
		return false
	case <-timer.C:
		return false
	}
	select {
	case err := <-reply:
		return err == nil
	case <-e.done:
		return false
	case <-timer.C:
		return false
	}
}

// drainPrio fails all pending priority tasks with ErrStopped.
func (e *Executor) drainPrio() {
	for {
		select {
		case t := <-e.prio:
			if t.fnReply != nil {
				t.fnReply <- ErrStopped //pstore:ignore execblock — fnReply is buffered (cap 1) and single-use; the send cannot block
			}
			if t.park != nil {
				close(t.park) // Reserve caller sees a closed channel
			}
		default:
			return
		}
	}
}

// run is the partition's single service loop: it owns the partition's data
// and virtual work clock, so anything that blocks here stalls the whole
// partition. pstore-vet's execblock check seeds its never-block reachability
// analysis from this marker.
//
//pstore:executor
func (e *Executor) run() {
	defer e.drainPrio()
	defer close(e.done)
	for {
		var t task
		var ok bool
		select {
		case t = <-e.prio:
			ok = true
		default:
			select {
			case t = <-e.prio:
				ok = true
			case t, ok = <-e.queue:
			default:
				// Both lanes empty: block for the next task and reset the
				// work clock — idle time is not banked as service credit.
				select {
				case t = <-e.prio:
					ok = true
				case t, ok = <-e.queue:
				}
				e.workClock = time.Now()
			}
		}
		if !ok {
			return
		}
		switch {
		case t.txn != nil:
			res := e.execTxn(t.txn)
			if e.cfg.Log != nil && t.txn.dirty && !isNotOwned(res.Err) {
				// Command logging: hand the ack to the group committer so
				// the client never sees a result that could be lost. The
				// executor moves straight on to the next transaction —
				// pipelining is what makes group commit cheap.
				e.ackDurable(t, res)
			} else {
				e.deliver(t, res)
			}
		case t.fn != nil:
			rows, err := t.fn(e.part)
			if rows > 0 {
				e.migRows.Add(int64(rows))
				e.spin(time.Duration(rows) * e.cfg.MigrationRowCost)
			}
			if t.fnReply != nil {
				t.fnReply <- err //pstore:ignore execblock — fnReply is buffered (cap 1) and single-use; the send cannot block
			}
		case t.park != nil:
			// Two-phase-commit style reservation: the executor parks until
			// the coordinator releases it, modeling H-Store's blocking
			// distributed transactions.
			t.park <- struct{}{} //pstore:ignore execblock — 2PC reservation: parking the partition is the point (H-Store blocking distributed txn)
			<-t.held             //pstore:ignore execblock — released by the coordinator's release func; parking until then is the reservation contract
		}
	}
}

func isNotOwned(err error) bool { return storage.IsNotOwned(err) }

// deliver completes a transaction task: it stamps the latency, records it,
// and hands the result to the task's completion (async calls) or reply
// channel (synchronous calls). It runs on the executor goroutine; both
// delivery forms are bounded — Complete implementations are contractually
// non-blocking and reply channels are buffered single-use.
func (e *Executor) deliver(t task, res Result) {
	res.Latency = time.Since(t.started)
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.Record(time.Now(), res.Latency)
	}
	if t.comp != nil {
		t.comp.Complete(res)
		return
	}
	if t.reply != nil {
		t.reply <- res //pstore:ignore execblock — reply is buffered (cap 1) and single-use; the send cannot block
	}
}

// ackDurable defers a transaction's reply until its log record is on stable
// storage. The callback runs on the log's group-commit goroutine (or a
// replication feed's completion path).
func (e *Executor) ackDurable(t task, res Result) {
	started := t.started
	reply := t.reply
	comp := t.comp
	e.cfg.Log.Append(t.txn.Proc, t.txn.Key, t.txn.Args, func(lsn uint64, logErr error) {
		res.LSN = lsn
		if logErr != nil && res.Err == nil {
			res.Err = fmt.Errorf("engine: command log append: %w", logErr)
		}
		res.Latency = time.Since(started)
		if e.cfg.Recorder != nil {
			e.cfg.Recorder.Record(time.Now(), res.Latency)
		}
		if comp != nil {
			comp.Complete(res)
			return
		}
		if reply != nil {
			reply <- res //pstore:ignore execblock — reply is buffered (cap 1) and single-use; runs on the group-commit goroutine
		}
	})
}

func (e *Executor) execTxn(txn *Txn) Result {
	proc, ok := e.reg.Lookup(txn.Proc)
	if !ok {
		return Result{Err: fmt.Errorf("engine: unknown procedure %q", txn.Proc), Partition: e.part.ID()}
	}
	txn.dirty = false
	txn.part = e.part
	err := e.safeCall(proc, txn)
	txn.part = nil
	if storage.IsNotOwned(err) {
		// The key's bucket is in flight to another partition: the engine
		// detects this on the index lookup and requeues without doing the
		// transaction's work, so no service time is charged.
		return Result{Out: txn.out, Err: err, Partition: e.part.ID()}
	}
	e.spin(e.cfg.ServiceTime)
	e.processed.Add(1)
	if err != nil && IsAbort(err) {
		e.aborted.Add(1)
	}
	return Result{Out: txn.out, Err: err, Partition: e.part.ID()}
}

// safeCall runs a stored procedure, converting a panic into an error so a
// buggy procedure cannot take down its partition executor (H-Store aborts
// the transaction, not the site).
func (e *Executor) safeCall(proc Procedure, txn *Txn) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: procedure %q panicked: %v", txn.Proc, r)
		}
	}()
	return proc(txn)
}

// spin charges d of synthetic work against the executor's virtual work
// clock and waits until the clock catches up. The clock is never clamped
// forward here: if the host's coarse timers make one wait overshoot, the
// next transactions wait correspondingly less, so the sustained service
// rate stays at exactly 1/ServiceTime. The run loop resets the clock after
// genuine idleness. The wait is cancellable: Stop closes e.quit, so a
// stopping executor never rides out a pacing delay (and the execblock
// invariant — no bare sleeps on the executor path — holds by construction).
func (e *Executor) spin(d time.Duration) {
	if d <= 0 {
		return
	}
	e.workClock = e.workClock.Add(d)
	wait := time.Until(e.workClock)
	if wait <= 0 {
		return
	}
	if e.spinTimer == nil {
		e.spinTimer = time.NewTimer(wait)
	} else {
		e.spinTimer.Reset(wait)
	}
	select {
	case <-e.spinTimer.C:
	case <-e.quit:
		if !e.spinTimer.Stop() {
			// Timer fired concurrently with the cancel; drain so the next
			// Reset starts from a clean channel.
			select {
			case <-e.spinTimer.C:
			default:
			}
		}
	}
}

// Submit enqueues a transaction and returns a channel delivering its
// result, or ErrOverloaded/ErrStopped.
func (e *Executor) Submit(txn *Txn) (<-chan Result, error) {
	reply := make(chan Result, 1)
	t := task{txn: txn, reply: reply, started: time.Now()}
	if err := e.enqueue(t); err != nil {
		return nil, err
	}
	return reply, nil
}

// resultChans recycles Call's one-shot reply channels: every enqueued
// transaction receives exactly one reply (the run loop drains the queue on
// Stop), so a received-from channel is always safe to reuse.
var resultChans = sync.Pool{New: func() any { return make(chan Result, 1) }}

// Call runs a transaction and waits for its result. Unlike Submit it
// recycles the reply channel, so the steady-state call path does not
// allocate.
func (e *Executor) Call(txn *Txn) Result {
	reply := resultChans.Get().(chan Result)
	t := task{txn: txn, reply: reply, started: time.Now()}
	if err := e.enqueue(t); err != nil {
		resultChans.Put(reply)
		return Result{Err: err}
	}
	res := <-reply
	resultChans.Put(reply)
	return res
}

// CallAsync enqueues a transaction and delivers its result through comp
// instead of a reply channel: the executor (or the group committer, for
// logged writes) invokes comp.Complete directly, so a completed call needs
// no wakeup of a parked caller goroutine. Enqueue failures (ErrOverloaded,
// ErrStopped) complete synchronously on the caller's goroutine.
func (e *Executor) CallAsync(txn *Txn, comp Completion) {
	t := task{txn: txn, comp: comp, started: time.Now()}
	if err := e.enqueue(t); err != nil {
		comp.Complete(Result{Err: err})
	}
}

// Do runs fn on the executor's goroutine with exclusive partition access
// and waits for completion, dispatched through the priority lane ahead of
// queued transactions. fn reports the number of rows it touched so the
// executor can charge migration work time.
func (e *Executor) Do(fn func(p *storage.Partition) (rows int, err error)) error {
	reply := make(chan error, 1)
	if err := e.enqueuePrio(task{fn: fn, fnReply: reply}); err != nil {
		return err
	}
	return <-reply
}

// DoBackground runs fn like Do, but through the regular transaction queue
// instead of the priority lane: the work waits its turn behind already
// queued transactions, so foreground latency sees at most one background
// task of interference. Pre-copy migration streams bucket slices through
// here — bulk copying is exactly the work that must NOT preempt
// transactions. Unlike transaction submission, a full queue blocks instead
// of shedding: migration supplies its own pacing and must not be dropped
// by admission control.
func (e *Executor) DoBackground(fn func(p *storage.Partition) (rows int, err error)) error {
	reply := make(chan error, 1)
	if err := e.enqueueBlocking(task{fn: fn, fnReply: reply}); err != nil {
		return err
	}
	return <-reply
}

// Reserve parks the executor (used by the distributed-transaction
// coordinator). It returns a release function once the executor is parked.
// The caller MUST invoke the release function.
func (e *Executor) Reserve() (release func(), err error) {
	park := make(chan struct{}, 1)
	held := make(chan struct{})
	if err := e.enqueuePrio(task{park: park, held: held}); err != nil {
		return nil, err
	}
	if _, ok := <-park; !ok {
		return nil, ErrStopped
	}
	return func() { close(held) }, nil
}

// PartitionUnsafe exposes the underlying partition. It must only be used
// while the executor is parked via Reserve or from within Do; unsynchronized
// use races with the executor goroutine.
func (e *Executor) PartitionUnsafe() *storage.Partition { return e.part }

func (e *Executor) enqueue(t task) error {
	e.stopMu.RLock()
	defer e.stopMu.RUnlock()
	if e.stopped {
		return ErrStopped
	}
	select {
	case e.queue <- t:
		return nil
	default:
		e.shed.Add(1)
		return ErrOverloaded
	}
}

// enqueueBlocking adds a task to the regular queue, waiting for space
// instead of shedding. Holding stopMu's read side across the send is safe:
// the run loop keeps draining the queue until Stop closes it, and Stop can
// only close it after this send completes and releases the lock.
func (e *Executor) enqueueBlocking(t task) error {
	e.stopMu.RLock()
	defer e.stopMu.RUnlock()
	if e.stopped {
		return ErrStopped
	}
	e.queue <- t //pstore:ignore lockdiscipline — read lock only fences Stop's close; the run loop drains the queue without taking stopMu, so the send always progresses
	return nil
}

// enqueuePrio adds a task to the priority lane, blocking if the lane is
// momentarily full but failing once the executor stops.
func (e *Executor) enqueuePrio(t task) error {
	select {
	case <-e.done:
		return ErrStopped
	default:
	}
	select {
	case e.prio <- t:
		return nil
	case <-e.done:
		return ErrStopped
	}
}
