// Package engine implements the H-Store-style execution substrate: one
// serial executor goroutine per data partition, running stored-procedure
// transactions to completion without locking or latching. Synthetic
// per-transaction service time emulates the CPU cost of real transaction
// work at a configurable scale, and migration work shares the same executor
// — which is exactly why reconfiguring under peak load hurts latency, the
// phenomenon P-Store exists to avoid.
package engine

import (
	"errors"
	"fmt"
	"sync"

	"pstore/internal/storage"
)

// Txn is a stored-procedure invocation: the procedure name, the
// partitioning key that routes it, and its arguments. Procedures read and
// write through the Txn, which scopes access to the executing partition.
type Txn struct {
	Proc string
	Key  string
	Args map[string]string

	part    *storage.Partition
	out     map[string]string
	scratch map[string]string // reusable column buffer, see ScratchCols
	dirty   bool              // set by Put/Delete; only dirty txns are command-logged
}

// txnPool recycles Txn contexts (and their output maps) across
// invocations, keeping the steady-state request path allocation-free.
var txnPool = sync.Pool{New: func() any { return new(Txn) }}

// AcquireTxn returns a pooled Txn initialized for one invocation. Release
// it after the result (including Result.Out, which aliases the Txn's
// output map) has been consumed.
func AcquireTxn(proc, key string, args map[string]string) *Txn {
	t := txnPool.Get().(*Txn)
	t.Proc, t.Key, t.Args = proc, key, args
	return t
}

// Release clears the Txn and returns it to the pool. The output map is
// retained (emptied) so repeated use does not reallocate it. Callers must
// not touch the Txn — or a Result.Out obtained from it — afterwards.
func (t *Txn) Release() {
	clear(t.out)
	clear(t.scratch)
	t.Proc, t.Key, t.Args = "", "", nil
	t.part, t.dirty = nil, false
	txnPool.Put(t)
}

// Arg returns the named argument ("" if absent).
func (t *Txn) Arg(name string) string { return t.Args[name] }

// SetOut records a named output value returned to the caller.
func (t *Txn) SetOut(name, value string) {
	if t.out == nil {
		t.out = make(map[string]string)
	}
	t.out[name] = value
}

// Get reads a row from the executing partition, materialized as an owned
// Row. Hot procedures should prefer GetView, which does not allocate.
func (t *Txn) Get(table, key string) (storage.Row, bool, error) {
	return t.part.Get(table, key)
}

// GetView reads a row as a zero-copy view borrowing the partition's arena
// bytes. The view is valid only until the procedure returns and must not be
// retained (enforced by the tupleescape vet check); copy what outlives the
// transaction with CopyCols or Row.
func (t *Txn) GetView(table, key string) (storage.TupleView, bool, error) {
	return t.part.GetView(table, key)
}

// ScratchCols returns an emptied column map owned by the Txn, for building
// a row to Put without allocating. Put encodes the map immediately and
// never retains it, so one scratch map per transaction context is safe —
// but a second ScratchCols call reuses (and clears) the same map, so build
// and Put one row at a time.
func (t *Txn) ScratchCols() map[string]string {
	if t.scratch == nil {
		t.scratch = make(map[string]string, 8)
	} else {
		clear(t.scratch)
	}
	return t.scratch
}

// Put writes a row to the executing partition.
func (t *Txn) Put(table, key string, cols map[string]string) error {
	err := t.part.Put(table, key, cols)
	if err == nil {
		t.dirty = true
	}
	return err
}

// Delete removes a row from the executing partition.
func (t *Txn) Delete(table, key string) (bool, error) {
	existed, err := t.part.Delete(table, key)
	if err == nil && existed {
		t.dirty = true
	}
	return existed, err
}

// Abort returns an error that marks a client-visible, intentional abort
// (e.g. reserving out-of-stock inventory) rather than a system fault.
func (t *Txn) Abort(reason string) error {
	return &AbortError{Reason: reason}
}

// AbortError marks an intentional transaction abort.
type AbortError struct {
	Reason string
}

func (e *AbortError) Error() string { return "engine: transaction aborted: " + e.Reason }

// IsAbort reports whether err is an intentional abort.
func IsAbort(err error) bool {
	var a *AbortError
	return errors.As(err, &a)
}

// Procedure is a stored procedure body, executed serially on the partition
// that owns its routing key.
type Procedure func(tx *Txn) error

// Registry maps procedure names to bodies. It is immutable after
// registration and safe to share across executors.
type Registry struct {
	procs map[string]Procedure
}

// NewRegistry returns an empty procedure registry.
func NewRegistry() *Registry {
	return &Registry{procs: make(map[string]Procedure)}
}

// Register adds a procedure; registering a duplicate name panics, as that
// is a programming error caught at startup.
func (r *Registry) Register(name string, p Procedure) {
	if _, dup := r.procs[name]; dup {
		panic(fmt.Sprintf("engine: duplicate procedure %q", name))
	}
	r.procs[name] = p
}

// Lookup returns the named procedure.
func (r *Registry) Lookup(name string) (Procedure, bool) {
	p, ok := r.procs[name]
	return p, ok
}

// Names returns the registered procedure names (unordered).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.procs))
	for n := range r.procs {
		out = append(out, n)
	}
	return out
}
