package engine

import (
	"fmt"
	"sort"

	"pstore/internal/storage"
)

// MultiDo executes fn with exclusive access to several partitions at once,
// modeling an H-Store distributed transaction: every involved partition
// executor is parked (in partition-ID order, to avoid deadlocks between
// concurrent coordinators) for the duration of fn, so the multi-partition
// work is serializable but stalls all participants — the reason partitioned
// stores want few distributed transactions (§4.2).
//
// parts passed to fn are ordered by ascending partition ID.
func MultiDo(execs []*Executor, fn func(parts []*storage.Partition) error) error {
	if len(execs) == 0 {
		return fmt.Errorf("engine: MultiDo with no executors")
	}
	sorted := make([]*Executor, len(execs))
	copy(sorted, execs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Partition() < sorted[j].Partition() })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Partition() == sorted[i-1].Partition() {
			return fmt.Errorf("engine: MultiDo with duplicate partition %d", sorted[i].Partition())
		}
	}
	releases := make([]func(), 0, len(sorted))
	defer func() {
		for i := len(releases) - 1; i >= 0; i-- {
			releases[i]()
		}
	}()
	parts := make([]*storage.Partition, len(sorted))
	for i, e := range sorted {
		rel, err := e.Reserve()
		if err != nil {
			return fmt.Errorf("engine: reserving partition %d: %w", e.Partition(), err)
		}
		releases = append(releases, rel)
		parts[i] = e.PartitionUnsafe()
	}
	return fn(parts)
}
