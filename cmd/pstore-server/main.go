// Command pstore-server runs a P-Store cluster as a standalone process,
// serving the B2W stored procedures over TCP (see internal/server for the
// protocol). Clients connect with cmd/pstore-client or the server.Client
// library; scale requests perform live migrations while transactions
// continue to execute.
//
// Usage:
//
//	pstore-server -addr 127.0.0.1:7070 -nodes 2 -partitions 2 -preload 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/cluster"
	"pstore/internal/engine"
	"pstore/internal/migration"
	"pstore/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "listen address")
		nodes       = flag.Int("nodes", 2, "initial nodes")
		partitions  = flag.Int("partitions", 2, "partitions per node")
		nBuckets    = flag.Int("buckets", 512, "hash buckets (migration granularity)")
		stockItems  = flag.Int("stock", 2000, "stock catalog size to preload")
		preload     = flag.Int("preload", 1000, "shopping carts to preload")
		serviceTime = flag.Duration("service-time", 200*time.Microsecond, "synthetic per-transaction work")
	)
	flag.Parse()

	reg := engine.NewRegistry()
	b2w.Register(reg)
	c, err := cluster.New(cluster.Config{
		InitialNodes:      *nodes,
		PartitionsPerNode: *partitions,
		NBuckets:          *nBuckets,
		Tables:            b2w.Tables,
		Registry:          reg,
		Engine: engine.Config{
			ServiceTime:      *serviceTime,
			MigrationRowCost: *serviceTime / 20,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pstore-server: %v\n", err)
		os.Exit(1)
	}
	defer c.Stop()

	d := b2w.NewDriver(b2w.DriverConfig{StockItems: *stockItems, CartPool: *preload, Seed: 1})
	if err := d.Preload(c, *preload); err != nil {
		fmt.Fprintf(os.Stderr, "pstore-server: preload: %v\n", err)
		os.Exit(1)
	}

	srv := server.New(c, migration.Options{BucketsPerChunk: 2, ChunkInterval: 5 * time.Millisecond}, log.Printf)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pstore-server: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	rows, _ := c.TotalRows()
	log.Printf("pstore-server: listening on %s (%d nodes × %d partitions, %d rows preloaded)",
		bound, *nodes, *partitions, rows)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("pstore-server: shutting down")
}
