// Command pstore-server runs a P-Store cluster as a standalone process,
// serving the B2W stored procedures over TCP (see internal/server for the
// protocol). Clients connect with cmd/pstore-client or the server.Client
// library; scale requests perform live migrations while transactions
// continue to execute.
//
// With -data-dir set the server is durable: committed transactions are
// group-committed to per-partition command logs before being acked,
// partitions snapshot periodically, and a restart (even after a crash)
// recovers the database from the latest snapshots plus log tails and skips
// preloading. On SIGINT/SIGTERM the server shuts down gracefully: it stops
// accepting connections, drains the executors, snapshots every partition
// and flushes/closes the logs before exiting.
//
// With -replicas k set, every partition ships its command log to k
// synchronous standbys hosted on other nodes; writes ack only after all live
// standbys confirm, session-consistent reads (pstore-client read) are served
// from standbys, and killing a node (pstore-client kill-node) promotes the
// caught-up standby within seconds (see internal/replication).
//
// With -chaos set the server runs under seeded fault injection for
// resilience testing: accepted connections drop/delay/duplicate/sever
// writes, random executors freeze briefly, migration bucket moves fail
// transiently, and — with the partition keys — a seeded schedule cuts and
// heals directed network links between nodes and the failover monitor,
// exercising split-brain fencing end to end. All of it runs on a
// reproducible schedule (see internal/faultinject).
//
// Usage:
//
//	pstore-server -addr 127.0.0.1:7070 -nodes 2 -partitions 2 -preload 1000 \
//	    -data-dir /var/lib/pstore
//	pstore-server -chaos 'seed=42,drop=0.01,sever=0.001,freeze=0.1,movefail=0.05'
//	pstore-server -replicas 1 -chaos 'seed=7,partition=0.2,partitionfor=500ms,partitionevery=250ms'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pstore/internal/b2w"
	"pstore/internal/cluster"
	"pstore/internal/durability"
	"pstore/internal/engine"
	"pstore/internal/faultinject"
	"pstore/internal/migration"
	"pstore/internal/profiling"
	"pstore/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "listen address")
		nodes        = flag.Int("nodes", 2, "initial nodes")
		partitions   = flag.Int("partitions", 2, "partitions per node")
		nBuckets     = flag.Int("buckets", 512, "hash buckets (migration granularity)")
		stockItems   = flag.Int("stock", 2000, "stock catalog size to preload")
		preload      = flag.Int("preload", 1000, "shopping carts to preload")
		serviceTime  = flag.Duration("service-time", 200*time.Microsecond, "synthetic per-transaction work")
		replicas     = flag.Int("replicas", 0, "synchronous standbys per partition (k-safety; 0 = no replication)")
		dataDir      = flag.String("data-dir", "", "durability directory (empty = in-memory only)")
		fsyncEvery   = flag.Bool("fsync-every-txn", false, "fsync per transaction instead of group commit")
		groupCommit  = flag.Duration("group-commit", 2*time.Millisecond, "group-commit fsync interval")
		snapInterval = flag.Duration("snapshot-interval", time.Minute, "periodic snapshot/log-truncation interval")
		chaosSpec    = flag.String("chaos", "", "fault-injection spec, e.g. 'seed=42,drop=0.01,sever=0.001,freeze=0.1,movefail=0.05,partition=0.2' (empty = no chaos)")
		cpuProf      = flag.String("cpuprofile", "", "write a CPU profile to this file (flushed on graceful shutdown)")
		memProf      = flag.String("memprofile", "", "write an allocation profile to this file on graceful shutdown")
		blockProf    = flag.String("blockprofile", "", "write a blocking profile to this file on graceful shutdown")
	)
	flag.Parse()

	stopProf, err := profiling.Start(profiling.Flags{CPU: *cpuProf, Mem: *memProf, Block: *blockProf})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pstore-server: %v\n", err)
		os.Exit(1)
	}

	// Chaos mode: one seeded injector drives connection faults, executor
	// freezes, migration move failures, and network partitions on a
	// reproducible schedule. Built before the cluster because the partition
	// matrix must be wired into the cluster config (link-aware monitor
	// probes, matrix-gated replication conns).
	var inj *faultinject.Injector
	var chaosOpts faultinject.Options
	if *chaosSpec != "" {
		opts, err := faultinject.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pstore-server: %v\n", err)
			os.Exit(1)
		}
		chaosOpts = opts
		inj = faultinject.New(opts)
	}

	reg := engine.NewRegistry()
	b2w.Register(reg)
	cfg := cluster.Config{
		InitialNodes:      *nodes,
		PartitionsPerNode: *partitions,
		NBuckets:          *nBuckets,
		Tables:            b2w.Tables,
		Registry:          reg,
		Engine: engine.Config{
			ServiceTime:      *serviceTime,
			MigrationRowCost: *serviceTime / 20,
		},
		DataDir:           *dataDir,
		ReplicationFactor: *replicas,
		Durability: durability.Options{
			SyncEvery:           *fsyncEvery,
			GroupCommitInterval: *groupCommit,
			SnapshotInterval:    *snapInterval,
		},
	}
	if inj != nil && chaosOpts.PartitionProb > 0 {
		m := inj.Matrix()
		cfg.Links = m
		cfg.LinkConnWrap = m.WrapConn
	}
	c, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pstore-server: %v\n", err)
		os.Exit(1)
	}

	if c.Recovered() {
		rows, _ := c.TotalRows()
		log.Printf("pstore-server: recovered %d rows from %s, skipping preload", rows, *dataDir)
	} else {
		d := b2w.NewDriver(b2w.DriverConfig{StockItems: *stockItems, CartPool: *preload, Seed: 1})
		if err := d.Preload(c, *preload); err != nil {
			fmt.Fprintf(os.Stderr, "pstore-server: preload: %v\n", err)
			c.Stop()
			os.Exit(1)
		}
		// Bulk loading bypasses the command log; checkpoint so the preload
		// survives a crash.
		if *dataDir != "" {
			if err := c.SnapshotAll(); err != nil {
				fmt.Fprintf(os.Stderr, "pstore-server: preload snapshot: %v\n", err)
				c.Stop()
				os.Exit(1)
			}
		}
	}

	mig := migration.Options{BucketsPerChunk: 2, ChunkInterval: 5 * time.Millisecond}

	var chaosStop chan struct{}
	var freezeDone, partDone <-chan struct{}
	if inj != nil {
		mig.FaultHook = inj.MoveFault
		mig.MoveRetries = 10
		chaosStop = make(chan struct{})
		freezeDone = inj.FreezeLoop(c.Executors, chaosStop)
		if chaosOpts.PartitionProb > 0 {
			// Cut/heal directed links between live nodes and the failover
			// monitor on the injector's seeded schedule. Matrix transitions
			// also land in the cluster's metrics registry.
			inj.Matrix().SetEvents(c.Events())
			partDone = inj.PartitionLoop(func() []int {
				eps := []int{faultinject.MonitorEndpoint}
				for _, n := range c.Nodes() {
					eps = append(eps, n.ID)
				}
				return eps
			}, chaosStop)
		}
		log.Printf("pstore-server: CHAOS MODE enabled (%s)", *chaosSpec)
	}

	srv := server.New(c, mig, log.Printf)
	if inj != nil {
		srv.WrapConns(inj.WrapConn)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pstore-server: %v\n", err)
		c.Stop()
		os.Exit(1)
	}
	rows, _ := c.TotalRows()
	log.Printf("pstore-server: listening on %s (%d nodes × %d partitions, %d rows, k=%d)",
		bound, c.NumNodes(), *partitions, rows, *replicas)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("pstore-server: %v: shutting down", s)
	// Graceful shutdown: stop accepting/serving connections first, then
	// drain the executors and flush+close the command logs. A second signal
	// aborts immediately.
	go func() {
		<-sig
		log.Printf("pstore-server: second signal, aborting")
		os.Exit(1)
	}()
	if err := srv.Close(); err != nil {
		log.Printf("pstore-server: closing listener: %v", err)
	}
	if inj != nil {
		close(chaosStop)
		<-freezeDone
		if partDone != nil {
			<-partDone
		}
		fc := inj.Counters()
		log.Printf("pstore-server: chaos totals: drops=%d delays=%d dups=%d severs=%d movefaults=%d freezes=%d cuts=%d heals=%d blackholes=%d",
			fc.Drops, fc.Delays, fc.Dups, fc.Severs, fc.MoveFaults, fc.Freezes, fc.Cuts, fc.Heals, fc.Blackholes)
	}
	c.Stop()
	stopProf()
	log.Printf("pstore-server: shutdown complete")
}
