// Command predict trains P-Store's load predictors on synthetic traces and
// reports forecast accuracy, reproducing the data behind Figs 5 and 6 and
// the §5 SPAR/ARMA/AR comparison.
//
// Usage:
//
//	predict -study b2w -train-days 28 -test-days 3
//	predict -study wiki
//	predict -study compare -tau 60
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pstore/internal/experiments"
	"pstore/internal/predict"
	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

func main() {
	var (
		study     = flag.String("study", "b2w", "study: b2w (Fig 5), wiki (Fig 6), compare (§5) or file (evaluate -trace)")
		trainDays = flag.Int("train-days", 28, "training days (the paper trains on 4 weeks)")
		testDays  = flag.Int("test-days", 2, "evaluation days")
		stride    = flag.Int("stride", 15, "evaluation stride in slots (higher = faster)")
		tau       = flag.Int("tau", 60, "comparison horizon for -study compare, in minutes")
		traceFile = flag.String("trace", "", "trace file (CSV or JSON) for -study file")
	)
	flag.Parse()

	switch *study {
	case "file":
		evaluateTraceFile(*traceFile, *tau, *stride)
	case "b2w":
		res, err := experiments.SPARStudyB2W(*trainDays, *testDays, []int{10, 20, 30, 40, 50, 60}, *stride)
		exitOn(err)
		printStudy(res, "min")
	case "wiki":
		for _, english := range []bool{true, false} {
			res, err := experiments.SPARStudyWikipedia(english, *trainDays, *testDays, []int{1, 2, 3, 4, 5, 6}, 1)
			exitOn(err)
			printStudy(res, "h")
		}
	case "compare":
		points, err := experiments.ModelComparison(*trainDays, *testDays, *tau, *stride)
		exitOn(err)
		fmt.Printf("Model comparison at τ=%d min (paper: SPAR 10.4%%, ARMA 12.2%%, AR 12.5%%):\n", *tau)
		for _, p := range points {
			fmt.Printf("  %-14s MRE %6.2f%%\n", p.Model, p.MRE*100)
		}
	default:
		fmt.Fprintf(os.Stderr, "predict: unknown study %q\n", *study)
		os.Exit(2)
	}
}

// evaluateTraceFile fits an auto-configured SPAR on the first 80% of an
// external trace and reports its accuracy on the rest.
func evaluateTraceFile(path string, tau, stride int) {
	if path == "" {
		fmt.Fprintln(os.Stderr, "predict: -study file requires -trace")
		os.Exit(2)
	}
	f, err := os.Open(path)
	exitOn(err)
	defer f.Close()
	var series *timeseries.Series
	if strings.HasSuffix(path, ".json") {
		series, err = workload.ReadTraceJSON(f)
	} else {
		series, err = workload.ReadTrace(f)
	}
	exitOn(err)
	testStart := series.Len() * 4 / 5
	cfg, err := predict.SuggestSPARConfig(series.Slice(0, testStart))
	exitOn(err)
	fmt.Printf("%s: %d slots at %v; detected period %d slots, SPAR n=%d m=%d\n",
		path, series.Len(), series.Step, cfg.Period, cfg.NPeriods, cfg.MRecent)
	spar := predict.NewSPAR(cfg)
	exitOn(spar.Fit(series.Slice(0, testStart)))
	if tau >= cfg.Period {
		tau = cfg.Period - 1
	}
	for _, h := range []int{1, tau / 2, tau} {
		if h < 1 {
			continue
		}
		ev, err := predict.EvaluateHorizon(spar, series, testStart, h, stride)
		exitOn(err)
		fmt.Printf("  τ=%4d slots  MRE %6.2f%%  (%d forecasts)\n", h, ev.MRE*100, ev.NForecast)
	}
}

func printStudy(res *experiments.PredictorStudyResult, unit string) {
	fmt.Printf("%s: SPAR accuracy vs forecast horizon\n", res.Workload)
	for _, p := range res.Points {
		fmt.Printf("  τ=%3d%-3s MRE %6.2f%%\n", p.Tau, unit, p.MRE*100)
	}
	fmt.Printf("  forecast curve at τ=%d%s: %d points\n", res.CurveTau, unit, len(res.CurvePred))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "predict: %v\n", err)
		os.Exit(1)
	}
}
