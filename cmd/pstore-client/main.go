// Command pstore-client drives a running pstore-server over TCP.
//
// Usage:
//
//	pstore-client -addr 127.0.0.1:7070 stats
//	pstore-client scale 4
//	pstore-client call AddLineToCart cart-42 sku=sku-1 qty=2 price=9.99
//	pstore-client call GetCart cart-42
//	pstore-client read GetCart cart-42     # session-consistent, replica-served
//	pstore-client kill-node 1              # chaos: drop a node, force failover
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pstore/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (scale is exempt)")
	retries := flag.Int("retries", 3, "automatic retries for safe-to-retry failures (busy, not sent)")
	reconnect := flag.Bool("reconnect", true, "redial automatically after connection loss")
	benchN := flag.Int("n", 5000, "bench: total transactions to issue")
	benchConc := flag.Int("conc", 32, "bench: concurrent in-flight calls (drives request pipelining)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	cl, err := server.DialOptions(*addr, server.Options{
		CallTimeout: *timeout,
		MaxRetries:  *retries,
		Reconnect:   *reconnect,
	})
	if err != nil {
		fail("dial: %v", err)
	}
	defer cl.Close()

	switch args[0] {
	case "ping":
		if err := cl.Ping(); err != nil {
			fail("ping: %v", err)
		}
		fmt.Println("pong")
	case "stats":
		st, err := cl.Stats()
		if err != nil {
			fail("stats: %v", err)
		}
		fmt.Printf("nodes=%d partitions=%d rows=%d offered=%d last-p99=%v\n",
			st.Nodes, st.Partitions, st.TotalRows, st.OfferedTxns, st.P99)
		if st.ReplFactor > 0 || st.DeadNodes > 0 {
			fmt.Printf("repl: k=%d replicas=%d max-lag=%d records=%d failovers=%d promotions=%d resyncs=%d\n",
				st.ReplFactor, st.ReplReplicas, st.ReplMaxLag, st.ReplRecords,
				st.ReplFailovers, st.ReplPromotions, st.ReplResyncs)
			fmt.Printf("reads: replica=%d fallback=%d stale-waits=%d dead-nodes=%d\n",
				st.ReplReplicaReads, st.ReplFallbackReads, st.ReplStaleWaits, st.DeadNodes)
			fmt.Printf("fencing: fenced-writes=%d quorum-losses=%d quorum-shed=%d promotions-blocked=%d stale-demotions=%d\n",
				st.ReplFencedWrites, st.ReplQuorumLosses, st.ReplQuorumLostWrites,
				st.ReplPromotionsBlocked, st.ReplStaleDemotions)
		}
	case "scale":
		if len(args) != 2 {
			usage()
		}
		target, err := strconv.Atoi(args[1])
		if err != nil {
			usage()
		}
		if err := cl.Scale(target); err != nil {
			fail("scale: %v", err)
		}
		fmt.Printf("scaled to %d nodes\n", target)
	case "call", "read":
		if len(args) < 3 {
			usage()
		}
		proc, key := args[1], args[2]
		callArgs := make(map[string]string)
		for _, kv := range args[3:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				usage()
			}
			callArgs[parts[0]] = parts[1]
		}
		var res *server.CallResult
		if args[0] == "read" {
			// Session-consistent read: a fresh CLI process has an empty
			// session vector, so any caught-up replica may serve it.
			res, err = cl.Read(proc, key, callArgs)
		} else {
			res, err = cl.Call(proc, key, callArgs)
		}
		if err != nil {
			if res != nil && res.Abort {
				fmt.Printf("aborted: %v (latency %v)\n", err, res.Latency)
				return
			}
			fail("%s: %v", args[0], err)
		}
		fmt.Printf("ok latency=%v", res.Latency)
		for k, v := range res.Out {
			fmt.Printf(" %s=%s", k, v)
		}
		fmt.Println()
	case "kill-node":
		if len(args) != 2 {
			usage()
		}
		node, err := strconv.Atoi(args[1])
		if err != nil {
			usage()
		}
		if err := cl.KillNode(node); err != nil {
			fail("kill-node: %v", err)
		}
		fmt.Printf("node %d killed; failover in progress\n", node)
	case "bench":
		bench(cl, *benchN, *benchConc)
	default:
		usage()
	}
}

// bench saturates a single connection with conc concurrent AddLineToCart
// calls. All goroutines share one Client, so their requests coalesce into
// batched writes and pipeline through the server — the closed-loop
// throughput printed here is dominated by how well that batching works.
func bench(cl *server.Client, n, conc int) {
	if n <= 0 || conc <= 0 {
		usage()
	}
	var (
		issued atomic.Int64
		errs   atomic.Int64
		wg     sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			args := map[string]string{"sku": "sku-bench", "qty": "1", "price": "9.99"}
			for {
				i := issued.Add(1)
				if i > int64(n) {
					return
				}
				key := fmt.Sprintf("bench-cart-%d", (int(i)+w)%64)
				if _, err := cl.Call("AddLineToCart", key, args); err != nil {
					errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("bench: %d txns, %d in flight, %v elapsed, %.0f txn/s, %d errors\n",
		n, conc, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), errs.Load())
	if errs.Load() > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pstore-client [-addr host:port] [-timeout D] [-retries N] [-n N] [-conc C] <command>
commands:
  ping
  stats
  scale <nodes>
  call <procedure> <key> [arg=value ...]
  read <procedure> <key> [arg=value ...]   session-consistent read, replica-served when possible
  kill-node <node>                         chaos: kill one node's partitions, forcing failover
  bench    issue -n transactions with -conc concurrent calls over one connection`)
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pstore-client: "+format+"\n", args...)
	os.Exit(1)
}
