// Command bench runs the engine-level experiments of §8 end to end on the
// compressed-time substrate: parameter discovery (Fig 7, Fig 8), the
// comparison of elasticity approaches (Fig 9, Fig 10, Table 2), reaction to
// unexpected spikes (Fig 11) and the workload uniformity analysis (§8.1).
//
// Usage:
//
//	bench -experiment all
//	bench -experiment fig9 -replay-days 3 -predictor spar
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pstore/internal/experiments"
	"pstore/internal/metrics"
	"pstore/internal/profiling"
)

func main() {
	var (
		which      = flag.String("experiment", "all", "experiment: fig7, fig8, fig9, fig11, skew or all")
		replayDays = flag.Int("replay-days", 2, "days replayed in fig9/fig11 (the paper replays 3)")
		trainDays  = flag.Int("train-days", 4, "training days for the predictor")
		predictor  = flag.String("predictor", "spar", "predictor for P-Store runs: spar or oracle")
		seed       = flag.Int64("seed", 3, "trace seed")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		blockProf  = flag.String("blockprofile", "", "write a blocking profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(profiling.Flags{CPU: *cpuProf, Mem: *memProf, Block: *blockProf})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	sc := experiments.QuickScale()
	run := func(name string, fn func() error) {
		if *which != "all" && *which != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	var setup *experiments.Setup
	discover := func() error {
		var err error
		setup, err = experiments.DiscoverParameters(sc, 400*time.Millisecond, 8,
			[]int{1, 2, 4, 8, 32}, 4*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Printf("Fig 7 — single-node ramp (%d points):\n", len(setup.Saturation.Points))
		fmt.Printf("%12s %12s %10s %10s\n", "offered tps", "done tps", "p50", "p99")
		for _, p := range setup.Saturation.Points {
			fmt.Printf("%12.0f %12.0f %10v %10v\n", p.OfferedRate, p.Throughput, p.P50.Round(time.Millisecond), p.P99.Round(time.Millisecond))
		}
		fmt.Printf("saturation %.0f tps → Q̂ = %.0f tps, Q = %.0f tps (80%%/65%% rules)\n",
			setup.Saturation.Saturation, setup.Saturation.QHat, setup.Saturation.Q)
		fmt.Printf("\nFig 8 — chunk-size sweep at Q̂:\n")
		fmt.Printf("%-10s %14s %12s %10s %10s\n", "config", "migration", "rows moved", "p99 viol", "windows")
		for _, r := range setup.Chunks.Runs {
			fmt.Printf("%-10s %14v %12d %10d %10d\n", r.Label, r.MigrationTime.Round(time.Millisecond),
				r.RowsMoved, r.Violations.P99Violations, len(r.Windows))
		}
		fmt.Printf("derived D = %.1f slots, rate R = %.0f rows/s\n", setup.Chunks.DSlots, setup.Chunks.RatePerSec)
		fmt.Printf("planner params: Q=%.1f/slot Q̂=%.1f/slot D=%.1f P=%d\n",
			setup.Params.Q, setup.Params.QHat, setup.Params.D, setup.Params.PartitionsPerNode)
		return nil
	}
	ensureSetup := func() error {
		if setup != nil {
			return nil
		}
		setup = &experiments.Setup{Scale: sc, Params: experiments.QuickParams(sc)}
		fmt.Printf("(using pre-discovered QuickParams: Q=%.1f/slot Q̂=%.1f/slot D=%.1f)\n",
			setup.Params.Q, setup.Params.QHat, setup.Params.D)
		return nil
	}

	run("fig7", discover)
	run("fig8", func() error {
		if setup != nil {
			return nil // already printed by fig7 discovery
		}
		return discover()
	})

	run("fig9", func() error {
		if err := ensureSetup(); err != nil {
			return err
		}
		kind := experiments.PredictorSPAR
		if *predictor == "oracle" {
			kind = experiments.PredictorOracle
		}
		cfg, err := experiments.BuildApproachesConfig(setup, *trainDays, *replayDays, kind, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("replaying %d day(s), peak nodes %d, small nodes %d, horizon %d slots\n\n",
			*replayDays, cfg.PeakNodes, cfg.SmallNodes, cfg.Horizon)
		fmt.Printf("Table 2 — SLA violations (>%v) and machines:\n", sc.SLAThreshold)
		fmt.Printf("%-14s %8s %8s %8s %12s %10s\n", "approach", "p50", "p95", "p99", "avg machines", "requests")
		for _, a := range []experiments.Approach{
			experiments.ApproachStaticPeak,
			experiments.ApproachStaticSmall,
			experiments.ApproachReactive,
			experiments.ApproachPStore,
		} {
			res, err := experiments.RunApproach(*cfg, a)
			if err != nil {
				return err
			}
			fmt.Printf("%-14s %8d %8d %8d %12.2f %10d\n", res.Approach,
				res.SLA.P50Violations, res.SLA.P95Violations, res.SLA.P99Violations,
				res.AvgMachines, res.Requests)
			// Fig 10 inputs: top-1% tail CDF extremes.
			for _, pct := range []int{50, 95, 99} {
				series := metrics.PercentileSeries(res.Windows, pct)
				cdf := metrics.TopFractionCDF(series, 0.01)
				if len(cdf) > 0 {
					fmt.Printf("    top-1%% p%d tail: %.0f..%.0f ms\n", pct, cdf[0].Value, cdf[len(cdf)-1].Value)
				}
			}
		}
		return nil
	})

	run("fig11", func() error {
		if err := ensureSetup(); err != nil {
			return err
		}
		cfg, err := experiments.BuildApproachesConfig(setup, *trainDays, 1, experiments.PredictorOracle, *seed)
		if err != nil {
			return err
		}
		spikeStart := cfg.ReplayStart + sc.SlotsPerDay/3
		runs, err := experiments.SpikeStudy(*cfg, spikeStart, sc.SlotsPerDay/8, 2.5)
		if err != nil {
			return err
		}
		fmt.Printf("Fig 11 — unexpected 2.5× spike, fallback at rate R vs R×8:\n")
		fmt.Printf("%-10s %8s %8s %8s %12s\n", "rate", "p50", "p95", "p99", "avg machines")
		for _, r := range runs {
			fmt.Printf("%-10s %8d %8d %8d %12.2f\n", r.Label,
				r.SLA.P50Violations, r.SLA.P95Violations, r.SLA.P99Violations, r.AvgMachines)
		}
		return nil
	})

	run("skew", func() error {
		res := experiments.SkewAnalysis(30, 500000, 500000)
		fmt.Printf("§8.1 — uniformity over %d partitions (paper: accesses max +10.15%%, σ 2.62%%; data max +0.185%%, σ 0.099%%):\n", res.Partitions)
		fmt.Printf("  accesses: max over avg %+.2f%%, σ %.2f%%\n", res.AccessMaxOverAvg*100, res.AccessStdOverAvg*100)
		fmt.Printf("  data:     max over avg %+.2f%%, σ %.2f%%\n", res.DataMaxOverAvg*100, res.DataStdOverAvg*100)
		return nil
	})
}
