// Command pstore-vet runs the P-Store invariant analyzers (package
// internal/analysis) over module packages and prints compiler-style
// diagnostics. It exits 1 when any diagnostic is found, 2 on load errors,
// so CI can gate on it exactly like go vet:
//
//	go run ./cmd/pstore-vet ./...
//	go run ./cmd/pstore-vet -checks execblock,determinism ./internal/...
//
// The tool is stdlib-only: packages are parsed and type-checked from source
// (go/types with the source importer), so it needs no network, no GOPATH
// cache, and no external modules.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pstore/internal/analysis"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pstore-vet [-checks name,...] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the P-Store invariant analyzers. Packages default to ./...\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *checksFlag != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := analysis.AnalyzerByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "pstore-vet: unknown check %q (run with -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	// Type errors mean the analyzers ran over half-typed code; a "clean" run
	// on broken input must not look like a pass.
	if len(loader.TypeErrors) > 0 {
		for _, e := range loader.TypeErrors {
			fmt.Fprintf(os.Stderr, "pstore-vet: type error: %v\n", e)
		}
		os.Exit(2)
	}

	diags := analysis.RunAll(analyzers, pkgs)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pstore-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pstore-vet: %v\n", err)
	os.Exit(2)
}
