// Command pstore-vet runs the P-Store invariant analyzers (package
// internal/analysis) over module packages and prints compiler-style
// diagnostics. It exits 1 when any diagnostic is found, 2 on load errors,
// so CI can gate on it exactly like go vet:
//
//	go run ./cmd/pstore-vet ./...
//	go run ./cmd/pstore-vet -checks execblock,determinism ./internal/...
//	go run ./cmd/pstore-vet -stale -json ./...
//
// -stale additionally flags //pstore:ignore comments that suppress nothing
// (dead suppressions rot into lies about which invariants are waived);
// -json emits one JSON object per finding — including suppressed ones,
// marked — for CI annotation tooling.
//
// The tool is stdlib-only: packages are parsed and type-checked from source
// (go/types with the source importer), so it needs no network, no GOPATH
// cache, and no external modules.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pstore/internal/analysis"
)

// jsonFinding is the -json wire shape: one object per line.
type jsonFinding struct {
	Check      string `json:"check"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	checksFlag := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	staleFlag := flag.Bool("stale", false, "also flag //pstore:ignore comments that suppress nothing (requires the full suite)")
	jsonFlag := flag.Bool("json", false, "emit one JSON object per finding (including suppressed ones) instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pstore-vet [-checks name,...] [-stale] [-json] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the P-Store invariant analyzers. Packages default to ./...\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *staleFlag && *checksFlag != "" {
		// Stale detection compares suppressions against the full suite's
		// findings; a partial run would flag suppressions for every check
		// that did not get to report.
		fmt.Fprintln(os.Stderr, "pstore-vet: -stale cannot be combined with -checks (it needs the full suite's findings)")
		os.Exit(2)
	}
	if *checksFlag != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := analysis.AnalyzerByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "pstore-vet: unknown check %q (run with -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	// Type errors mean the analyzers ran over half-typed code; a "clean" run
	// on broken input must not look like a pass.
	if len(loader.TypeErrors) > 0 {
		for _, e := range loader.TypeErrors {
			fmt.Fprintf(os.Stderr, "pstore-vet: type error: %v\n", e)
		}
		os.Exit(2)
	}

	findings := analysis.Collect(analyzers, pkgs)
	var gate []analysis.Diagnostic
	for _, f := range findings {
		if !f.Suppressed {
			gate = append(gate, f.Diagnostic)
		}
	}
	if *staleFlag {
		gate = append(gate, analysis.Stale(analysis.CollectSuppressions(pkgs), findings)...)
	}

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		emit := func(d analysis.Diagnostic, suppressed bool) {
			enc.Encode(jsonFinding{
				Check: d.Check, File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Message: d.Message, Suppressed: suppressed,
			})
		}
		for _, d := range gate {
			emit(d, false)
		}
		for _, f := range findings {
			if f.Suppressed {
				emit(f.Diagnostic, true)
			}
		}
	} else {
		for _, d := range gate {
			fmt.Println(d.String())
		}
	}
	if len(gate) > 0 {
		fmt.Fprintf(os.Stderr, "pstore-vet: %d finding(s)\n", len(gate))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pstore-vet: %v\n", err)
	os.Exit(2)
}
