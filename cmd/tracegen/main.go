// Command tracegen generates synthetic load traces with the published
// characteristics of the paper's workloads (B2W shopping-cart load,
// Wikipedia EN/DE page views) and writes them as CSV.
//
// Usage:
//
//	tracegen -workload b2w -days 7 -out b2w.csv
//	tracegen -workload wiki-de -days 42 -out de.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"pstore/internal/timeseries"
	"pstore/internal/workload"
)

func main() {
	var (
		kind        = flag.String("workload", "b2w", "workload: b2w, wiki-en or wiki-de")
		days        = flag.Int("days", 7, "days of trace to generate")
		slotsPerDay = flag.Int("slots-per-day", 1440, "slots per day (b2w only; wiki is hourly)")
		seed        = flag.Int64("seed", 1, "generator seed")
		blackFriday = flag.Int("black-friday", -1, "day index of a Black Friday surge (b2w only; -1 = none)")
		format      = flag.String("format", "csv", "output format: csv or json")
		out         = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var series *timeseries.Series
	switch *kind {
	case "b2w":
		cfg := workload.DefaultB2WConfig()
		cfg.Days = *days
		cfg.SlotsPerDay = *slotsPerDay
		cfg.Seed = *seed
		cfg.BlackFridayDay = *blackFriday
		series = workload.GenerateB2W(cfg)
	case "wiki-en":
		cfg := workload.DefaultWikiEnglish()
		cfg.Days = *days
		cfg.Seed = *seed
		series = workload.GenerateWiki(cfg)
	case "wiki-de":
		cfg := workload.DefaultWikiGerman()
		cfg.Days = *days
		cfg.Seed = *seed
		series = workload.GenerateWiki(cfg)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "csv":
		err = workload.WriteTrace(w, series)
	case "json":
		err = workload.WriteTraceJSON(w, series)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d slots (%s step), min %.0f max %.0f mean %.0f\n",
		series.Len(), series.Step, series.Min(), series.Max(), series.Mean())
}
