// Command simulate runs the long-horizon allocation-strategy simulations of
// §8.3, reproducing Fig 12 (capacity-cost trade-off of P-Store Oracle,
// P-Store SPAR, Reactive, Simple and Static over months of load, swept over
// the target throughput Q) and Fig 13 (effective-capacity trajectories
// including Black Friday).
//
// Usage:
//
//	simulate -days 135 -train-days 28 -black-friday 120
//	simulate -fig13 -days 60 -train-days 21 -black-friday 50
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"pstore/internal/experiments"
)

func main() {
	var (
		days        = flag.Int("days", 60, "total days of synthetic B2W load (paper: ~135)")
		trainDays   = flag.Int("train-days", 21, "days used to train SPAR (paper: 28)")
		blackFriday = flag.Int("black-friday", 50, "day index of the Black Friday surge (-1 = none)")
		qFactors    = flag.String("q-factors", "0.8,1.0,1.25", "comma-separated Q multipliers to sweep")
		fig13       = flag.Bool("fig13", false, "also print the Fig 13 trajectory window")
		seed        = flag.Int64("seed", 5, "trace seed")
	)
	flag.Parse()

	var factors []float64
	for _, f := range strings.Split(*qFactors, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simulate: bad q-factor %q\n", f)
			os.Exit(2)
		}
		factors = append(factors, v)
	}
	cfg := experiments.SimStudyConfig{
		Days:           *days,
		TrainDays:      *trainDays,
		BlackFridayDay: *blackFriday,
		QFactors:       factors,
		Seed:           *seed,
	}

	res, err := experiments.CapacityCostStudy(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("Fig 12 — capacity-cost trade-off over %d simulated days (%d slots):\n", *days-*trainDays, res.Slots)
	fmt.Printf("%-16s %8s %12s %12s %14s %7s\n", "strategy", "Qfactor", "cost(norm)", "insuff %", "avg machines", "moves")
	points := append([]experiments.SimPoint(nil), res.Points...)
	sort.Slice(points, func(i, j int) bool {
		if points[i].Strategy != points[j].Strategy {
			return points[i].Strategy < points[j].Strategy
		}
		return points[i].QFactor < points[j].QFactor
	})
	for _, p := range points {
		fmt.Printf("%-16s %8.2f %12.3f %12.3f %14.2f %7d\n",
			p.Strategy, p.QFactor, p.NormalizedCost, p.InsufficientFrac*100, p.AvgMachines, p.Moves)
	}

	if *fig13 && *blackFriday >= 0 {
		windowStart := (*blackFriday - 1) * 288
		states, load, err := experiments.TrajectoryStudy(cfg, windowStart, 3*288)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simulate: fig13: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nFig 13 — Black Friday window (slot, load, then eff-cap per strategy):\n")
		names := make([]string, 0, len(states))
		for n := range states {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("%6s %12s", "slot", "load")
		for _, n := range names {
			fmt.Printf(" %16s", n)
		}
		fmt.Println()
		for i := 0; i < load.Len(); i += 12 { // hourly rows
			fmt.Printf("%6d %12.0f", windowStart+i, load.At(i))
			for _, n := range names {
				fmt.Printf(" %16.0f", states[n][i].EffCap)
			}
			fmt.Println()
		}
	}
}
